package peer

import (
	"testing"
	"time"
)

// fakeClock drives a breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

// TestBreakerTransitions is the table-driven open/half-open/close
// suite: each case is a scripted event sequence and the state it must
// end in.
func TestBreakerTransitions(t *testing.T) {
	const cooldown = time.Second
	type step struct {
		event string // "fail", "ok", "wait", "allow", "deny"
	}
	cases := []struct {
		name  string
		steps []string
		state string
	}{
		{"stays closed below threshold", []string{"fail", "fail", "allow"}, "closed"},
		{"opens at threshold", []string{"fail", "fail", "fail", "deny"}, "open"},
		{"success resets the streak", []string{"fail", "fail", "ok", "fail", "fail", "allow"}, "closed"},
		{"probe allowed after cooldown", []string{"fail", "fail", "fail", "wait", "allow"}, "half-open"},
		{"probe success closes", []string{"fail", "fail", "fail", "wait", "allow", "ok", "allow"}, "closed"},
		{"probe failure reopens", []string{"fail", "fail", "fail", "wait", "allow", "fail", "deny"}, "open"},
		{"second probe after reopen cooldown", []string{"fail", "fail", "fail", "wait", "allow", "fail", "wait", "allow", "ok"}, "closed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, clk := newTestBreaker(3, cooldown)
			for i, ev := range tc.steps {
				switch ev {
				case "fail":
					b.failure()
				case "ok":
					b.success()
				case "wait":
					clk.advance(cooldown + time.Millisecond)
				case "allow":
					if !b.allow() {
						t.Fatalf("step %d: allow() = false, want true (state %s)",
							i, b.snapshot().State)
					}
				case "deny":
					if b.allow() {
						t.Fatalf("step %d: allow() = true, want false (state %s)",
							i, b.snapshot().State)
					}
				}
			}
			if got := b.snapshot().State; got != tc.state {
				t.Errorf("final state %s, want %s", got, tc.state)
			}
		})
	}
}

// TestBreakerSingleProbe pins the half-open contract: exactly one probe
// is admitted per cooldown window until it resolves.
func TestBreakerSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.failure() // threshold 1: open immediately
	if b.allow() {
		t.Fatal("open breaker admitted a request")
	}
	clk.advance(2 * time.Second)
	if !b.allow() {
		t.Fatal("cooldown elapsed but probe denied")
	}
	if b.allow() {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	b.success()
	if !b.allow() || !b.allow() {
		t.Fatal("closed breaker must admit freely")
	}
	if snap := b.snapshot(); snap.Opens != 1 {
		t.Errorf("opens = %d, want 1", snap.Opens)
	}
}
