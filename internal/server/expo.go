package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Exposition content types. /metrics negotiates between the classic
// Prometheus text format and OpenMetrics 1.0: an Accept header naming
// application/openmetrics-text gets OpenMetrics — which is the only
// format that can carry exemplars — everything else gets the classic
// format unchanged.
const (
	contentTypeProm = "text/plain; version=0.0.4; charset=utf-8"
	contentTypeOM   = "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

// wantsOpenMetrics inspects the Accept header for an OpenMetrics media
// type. Plain prefix matching over the comma-separated alternatives is
// enough here: scrapers send the media type verbatim, and anything
// mangled safely falls back to the classic format.
func wantsOpenMetrics(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		if mt == "application/openmetrics-text" {
			return true
		}
	}
	return false
}

// expoWriter renders metric families in whichever exposition format the
// scrape negotiated. It owns the two formats' differences: OpenMetrics
// counter families are named without their _total suffix in HELP/TYPE
// lines, histogram buckets may carry exemplars, and the body ends with
// an EOF marker.
type expoWriter struct {
	w  io.Writer
	om bool
}

// family emits the HELP/TYPE header for one metric family. name is the
// full sample name (counters keep their _total suffix here).
func (x *expoWriter) family(name, typ, help string) {
	fam := name
	if x.om && typ == "counter" {
		fam = strings.TrimSuffix(fam, "_total")
	}
	fmt.Fprintf(x.w, "# HELP %s %s\n# TYPE %s %s\n", fam, help, fam, typ)
}

func (x *expoWriter) sample(name, labels, value string) {
	if labels == "" {
		fmt.Fprintf(x.w, "%s %s\n", name, value)
		return
	}
	fmt.Fprintf(x.w, "%s{%s} %s\n", name, labels, value)
}

func (x *expoWriter) counter(name, labels string, v uint64) {
	x.sample(name, labels, strconv.FormatUint(v, 10))
}

func (x *expoWriter) gauge(name, labels string, v float64) {
	x.sample(name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}

func (x *expoWriter) gaugeInt(name, labels string, v int64) {
	x.sample(name, labels, strconv.FormatInt(v, 10))
}

// histogram renders one histogram series: cumulative buckets, sum and
// count. In OpenMetrics mode, buckets whose exemplar slot is populated
// carry it as "# {trace_id=...} value timestamp" — the link from a
// latency spike to its span tree in /debug/trace/recent.
func (x *expoWriter) histogram(name, labels string, snap histSnapshot, ex [numBuckets + 1]*exemplar) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i := 0; i <= numBuckets; i++ {
		cum += snap.Counts[i]
		le := "+Inf"
		if i < numBuckets {
			le = strconv.FormatFloat(latencyBuckets[i], 'g', -1, 64)
		}
		fmt.Fprintf(x.w, "%s_bucket{%s%sle=%q} %d", name, labels, sep, le, cum)
		if x.om && ex[i] != nil {
			fmt.Fprintf(x.w, " # {trace_id=%q} %s %s",
				ex[i].TraceID,
				strconv.FormatFloat(ex[i].Value, 'g', -1, 64),
				strconv.FormatFloat(float64(ex[i].Time.UnixNano())/1e9, 'f', 3, 64))
		}
		fmt.Fprintln(x.w)
	}
	if labels == "" {
		fmt.Fprintf(x.w, "%s_sum %g\n", name, snap.Sum)
		fmt.Fprintf(x.w, "%s_count %d\n", name, snap.N)
	} else {
		fmt.Fprintf(x.w, "%s_sum{%s} %g\n", name, labels, snap.Sum)
		fmt.Fprintf(x.w, "%s_count{%s} %d\n", name, labels, snap.N)
	}
}

// eof terminates the exposition (OpenMetrics requires the marker).
func (x *expoWriter) eof() {
	if x.om {
		io.WriteString(x.w, "# EOF\n")
	}
}

// handleMetrics renders the full exposition in the negotiated format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	x := &expoWriter{w: w, om: wantsOpenMetrics(r)}
	if x.om {
		w.Header().Set("Content-Type", contentTypeOM)
	} else {
		w.Header().Set("Content-Type", contentTypeProm)
	}

	x.family("cpackd_uptime_seconds", "gauge", "Time since the server started.")
	x.gauge("cpackd_uptime_seconds", "", time.Since(m.start).Seconds())

	x.family("cpackd_requests_total", "counter", "Requests served, by endpoint and status code.")
	names := m.endpointNames()
	for _, name := range names {
		e := m.endpoint(name)
		codes := e.codes()
		sorted := make([]int, 0, len(codes))
		for c := range codes {
			sorted = append(sorted, c)
		}
		sort.Ints(sorted)
		for _, c := range sorted {
			x.counter("cpackd_requests_total", fmt.Sprintf("endpoint=%q,code=\"%d\"", name, c), codes[c])
		}
	}

	x.family("cpackd_request_duration_seconds", "histogram", "Request latency, by endpoint.")
	for _, name := range names {
		h := &m.endpoint(name).latency
		x.histogram("cpackd_request_duration_seconds", fmt.Sprintf("endpoint=%q", name),
			h.snapshot(), h.exemplarView())
	}

	x.family("cpackd_bytes_total", "counter", "Request and response payload bytes, by endpoint.")
	for _, name := range names {
		e := m.endpoint(name)
		x.counter("cpackd_bytes_total", fmt.Sprintf("endpoint=%q,direction=\"in\"", name), e.bytesIn.value())
		x.counter("cpackd_bytes_total", fmt.Sprintf("endpoint=%q,direction=\"out\"", name), e.bytesOut.value())
	}

	cs := s.cache.stats()
	x.family("cpackd_cache_hits_total", "counter", "Content-addressed cache hits.")
	x.counter("cpackd_cache_hits_total", "", cs.Hits)
	x.family("cpackd_cache_misses_total", "counter", "Content-addressed cache misses.")
	x.counter("cpackd_cache_misses_total", "", cs.Misses)
	x.family("cpackd_cache_evictions_total", "counter", "Entries evicted from the cache.")
	x.counter("cpackd_cache_evictions_total", "", cs.Evictions)
	x.family("cpackd_cache_entries", "gauge", "Resident cache entries.")
	x.gaugeInt("cpackd_cache_entries", "", int64(cs.Entries))
	x.family("cpackd_cache_bytes", "gauge", "Resident compressed bytes.")
	x.gaugeInt("cpackd_cache_bytes", "", cs.Bytes)
	x.family("cpackd_cache_unverified_entries", "gauge", "Quarantined replicated entries awaiting verification.")
	x.gaugeInt("cpackd_cache_unverified_entries", "", int64(cs.Unverified))

	x.family("cpackd_compress_coalesced_total", "counter", "Requests served by riding another request's in-flight compression.")
	x.counter("cpackd_compress_coalesced_total", "", m.coalesced.value())

	if stages := m.stageNames(); len(stages) > 0 {
		x.family("cpackd_stage_duration_seconds", "histogram", "Pipeline-stage duration, by traced span name.")
		for _, name := range stages {
			h := m.stage(name)
			x.histogram("cpackd_stage_duration_seconds", fmt.Sprintf("stage=%q", name),
				h.snapshot(), h.exemplarView())
		}
	}
	if s.tracer != nil {
		x.family("cpackd_traces_recorded_total", "counter", "Completed traces recorded into the trace ring (evicted ones included).")
		x.counter("cpackd_traces_recorded_total", "", s.tracer.Total())
		x.family("cpackd_traces_evicted_total", "counter", "Recorded traces overwritten by newer ones in the ring.")
		x.counter("cpackd_traces_evicted_total", "", s.tracer.Evicted())
		x.family("cpackd_trace_ring_capacity", "gauge", "Configured trace ring size (-trace-ring).")
		x.gaugeInt("cpackd_trace_ring_capacity", "", int64(s.tracer.Capacity()))
	}

	writeRuntimeMetrics(x)

	if s.slo != nil {
		x.family("cpackd_slo_state", "gauge", "SLO alert state: 0 ok, 1 warn, 2 page.")
		statuses := s.slo.Status()
		for _, st := range statuses {
			x.gaugeInt("cpackd_slo_state", fmt.Sprintf("slo=%q", st.Name), int64(sloStateValue(st.State)))
		}
		x.family("cpackd_slo_burn_rate", "gauge", "Error-budget burn rate per SLO and window (1 = spend exactly the budget over the window).")
		for _, st := range statuses {
			for _, b := range st.Burn {
				x.gauge("cpackd_slo_burn_rate", fmt.Sprintf("slo=%q,window=%q", st.Name, b.Window), b.Burn)
			}
		}
		x.family("cpackd_slo_budget_remaining", "gauge", "Fraction of the error budget left over the SLO's accounting window (negative = overspent).")
		for _, st := range statuses {
			x.gauge("cpackd_slo_budget_remaining", fmt.Sprintf("slo=%q", st.Name), st.BudgetRemaining)
		}
		x.family("cpackd_slo_requests_total", "counter", "Requests counted against each SLO over its budget window, by outcome.")
		for _, st := range statuses {
			x.counter("cpackd_slo_requests_total", fmt.Sprintf("slo=%q,outcome=\"good\"", st.Name), st.Good)
			x.counter("cpackd_slo_requests_total", fmt.Sprintf("slo=%q,outcome=\"bad\"", st.Name), st.Bad)
		}
		x.family("cpackd_slo_transitions_total", "counter", "Alert state entries per SLO, by severity.")
		for _, st := range statuses {
			x.counter("cpackd_slo_transitions_total", fmt.Sprintf("slo=%q,to=\"warn\"", st.Name), st.Warns)
			x.counter("cpackd_slo_transitions_total", fmt.Sprintf("slo=%q,to=\"page\"", st.Name), st.Pages)
		}
	}

	if s.profiler != nil {
		ps := s.profiler.Stats()
		x.family("cpackd_profile_triggers_total", "counter", "Profile captures requested (alerts + slow traces).")
		x.counter("cpackd_profile_triggers_total", "", ps.Triggered)
		x.family("cpackd_profile_captures_total", "counter", "Profile capture sets written to the on-disk ring.")
		x.counter("cpackd_profile_captures_total", "", ps.Captured)
		x.family("cpackd_profile_dropped_total", "counter", "Profile triggers dropped (capture in flight or cooldown).")
		x.counter("cpackd_profile_dropped_total", "", ps.Dropped)
		x.family("cpackd_profile_evicted_total", "counter", "Capture sets evicted from the on-disk ring.")
		x.counter("cpackd_profile_evicted_total", "", ps.Evicted)
		x.family("cpackd_profile_retained", "gauge", "Capture sets currently on disk.")
		x.gaugeInt("cpackd_profile_retained", "", int64(ps.Retained))
	}

	if c := s.cluster; c != nil {
		st := c.Stats()
		x.family("cpackd_peer_hits_total", "counter", "Cache fills served by a peer (verified).")
		x.counter("cpackd_peer_hits_total", "", m.peerHits.value())
		x.family("cpackd_peer_misses_total", "counter", "Warm-tier lookups the owner answered empty.")
		x.counter("cpackd_peer_misses_total", "", m.peerMisses.value())
		x.family("cpackd_peer_errors_total", "counter", "Peer fetch failures, breaker skips and failed payload verifications.")
		x.counter("cpackd_peer_errors_total", "", m.peerErrors.value())
		x.family("cpackd_peer_replications_total", "counter", "Entries pushed to their ring owner (async replication + anti-entropy).")
		x.counter("cpackd_peer_replications_total", "", st.ReplicationsSent)
		x.family("cpackd_peer_replications_dropped_total", "counter", "Replication jobs dropped because the queue was full.")
		x.counter("cpackd_peer_replications_dropped_total", "", st.ReplicationsDropped)
		x.family("cpackd_peer_offered_digests_total", "counter", "Digests offered to ring owners during anti-entropy.")
		x.counter("cpackd_peer_offered_digests_total", "", st.OfferedDigests)
		x.family("cpackd_peer_members", "gauge", "Ring members in the current view (including self).")
		x.gaugeInt("cpackd_peer_members", "", int64(len(c.Members())))
		x.family("cpackd_peer_ring_epoch", "gauge", "Membership version the current ring reflects.")
		x.counter("cpackd_peer_ring_epoch", "", c.RingEpoch())
		x.family("cpackd_peer_ring_changes_total", "counter", "Ring rebuilds driven by membership changes.")
		x.counter("cpackd_peer_ring_changes_total", "", m.ringChanges.value())
		x.family("cpackd_peer_antientropy_passes_total", "counter", "Anti-entropy passes completed (startup + ring changes).")
		x.counter("cpackd_peer_antientropy_passes_total", "", m.aePasses.value())
		x.family("cpackd_peer_heartbeats_total", "counter", "Successful membership gossip exchanges sent.")
		x.counter("cpackd_peer_heartbeats_total", "", st.Heartbeats)
		x.family("cpackd_peer_repl_queue_depth", "gauge", "Replication jobs waiting for a worker.")
		x.gaugeInt("cpackd_peer_repl_queue_depth", "", int64(c.ReplQueueDepth()))
		x.family("cpackd_peer_repl_queue_age_seconds", "gauge", "Age of the oldest still-queued replication job.")
		x.gauge("cpackd_peer_repl_queue_age_seconds", "", c.ReplQueueOldestAge().Seconds())
		x.family("cpackd_peer_replica_factor", "gauge", "Configured replicas per digest (R).")
		x.gaugeInt("cpackd_peer_replica_factor", "", int64(c.ReplicationFactor()))
		x.family("cpackd_peer_replica_fallthroughs_total", "counter", "Warm-tier hits served by a later replica after the first choice failed.")
		x.counter("cpackd_peer_replica_fallthroughs_total", "", st.ReplicaFallthroughs)
		x.family("cpackd_peer_readrepair_total", "counter", "Lagging replicas re-offered a verified entry after a fetch (local installs included).")
		x.counter("cpackd_peer_readrepair_total", "", st.ReadRepairs)
		x.family("cpackd_peer_handoff_hinted_total", "counter", "Failed replication pushes buffered as handoff hints.")
		x.counter("cpackd_peer_handoff_hinted_total", "", st.HandoffHinted)
		x.family("cpackd_peer_handoff_drained_total", "counter", "Handoff hints delivered to their recovered target.")
		x.counter("cpackd_peer_handoff_drained_total", "", st.HandoffDrained)
		x.family("cpackd_peer_handoff_reassigned_total", "counter", "Handoff hints re-routed to surviving owners after their target died or left.")
		x.counter("cpackd_peer_handoff_reassigned_total", "", st.HandoffReassigned)
		x.family("cpackd_peer_handoff_dropped_total", "counter", "Handoff hints dropped (buffer overflow or undeliverable).")
		x.counter("cpackd_peer_handoff_dropped_total", "", st.HandoffDropped)
		x.family("cpackd_peer_handoff_pending", "gauge", "Handoff hints currently buffered.")
		x.gaugeInt("cpackd_peer_handoff_pending", "", int64(st.HandoffPending))
		x.family("cpackd_peer_handoff_pending_bytes", "gauge", "Encoded bytes of buffered handoff hints.")
		x.gaugeInt("cpackd_peer_handoff_pending_bytes", "", int64(st.HandoffPendingBytes))
		x.family("cpackd_peer_fetch_duration_seconds", "histogram", "Warm-tier owner-fetch latency (breaker skips included).")
		x.histogram("cpackd_peer_fetch_duration_seconds", "", m.peerFetch.snapshot(), m.peerFetch.exemplarView())
		x.family("cpackd_peer_breaker_state", "gauge", "Per-peer breaker state: 0 closed, 1 half-open, 2 open.")
		health := c.Health()
		for _, h := range health {
			state := 0
			switch h.State {
			case "half-open":
				state = 1
			case "open":
				state = 2
			}
			x.gaugeInt("cpackd_peer_breaker_state", fmt.Sprintf("peer=%q", h.URL), int64(state))
		}
		x.family("cpackd_peer_breaker_opens_total", "counter", "Times each peer's breaker has opened.")
		for _, h := range health {
			x.counter("cpackd_peer_breaker_opens_total", fmt.Sprintf("peer=%q", h.URL), h.Opens)
		}
		x.family("cpackd_peer_member_state", "gauge", "Per-peer membership state: 0 alive, 1 suspect, 2 dead, 3 left.")
		for _, h := range health {
			ms := 0
			switch h.Member {
			case "suspect":
				ms = 1
			case "dead":
				ms = 2
			case "left":
				ms = 3
			}
			x.gaugeInt("cpackd_peer_member_state", fmt.Sprintf("peer=%q", h.URL), int64(ms))
		}
	}

	if st := s.cache.store; st != nil {
		ss := st.statsSnapshot()
		x.family("cpackd_cache_persist_restored_entries", "gauge", "Cache entries restored from disk at startup.")
		x.gaugeInt("cpackd_cache_persist_restored_entries", "", int64(ss.RestoredEntries))
		x.family("cpackd_cache_persist_replayed_bytes", "gauge", "Log and snapshot bytes replayed at startup.")
		x.gaugeInt("cpackd_cache_persist_replayed_bytes", "", int64(ss.BytesReplayed))
		x.family("cpackd_cache_persist_records_skipped_total", "counter", "Persisted records rejected during recovery.")
		x.counter("cpackd_cache_persist_records_skipped_total", "", ss.RecordsSkipped)
		x.family("cpackd_cache_persist_tail_truncations_total", "counter", "Torn log tails truncated during recovery.")
		x.counter("cpackd_cache_persist_tail_truncations_total", "", ss.TailTruncations)
		x.family("cpackd_cache_persist_appends_total", "counter", "Entries appended to the cache log.")
		x.counter("cpackd_cache_persist_appends_total", "", ss.Appends)
		x.family("cpackd_cache_persist_append_errors_total", "counter", "Cache log append failures.")
		x.counter("cpackd_cache_persist_append_errors_total", "", ss.AppendErrors)
		x.family("cpackd_cache_persist_compactions_total", "counter", "Snapshot compactions completed.")
		x.counter("cpackd_cache_persist_compactions_total", "", ss.Compactions)
		x.family("cpackd_cache_persist_log_bytes", "gauge", "Current cache log size.")
		x.gaugeInt("cpackd_cache_persist_log_bytes", "", ss.LogBytes)
		x.family("cpackd_cache_persist_snapshot_bytes", "gauge", "Last compacted snapshot size.")
		x.gaugeInt("cpackd_cache_persist_snapshot_bytes", "", ss.SnapshotBytes)
	}

	if tenants := m.tenantNames(); len(tenants) > 0 {
		x.family("cpackd_tenant_requests_total", "counter", "Requests served, by tenant and status code.")
		for _, id := range tenants {
			codes := m.tenant(id).codes()
			sorted := make([]int, 0, len(codes))
			for c := range codes {
				sorted = append(sorted, c)
			}
			sort.Ints(sorted)
			for _, c := range sorted {
				x.counter("cpackd_tenant_requests_total", fmt.Sprintf("tenant=%q,code=\"%d\"", id, c), codes[c])
			}
		}
		x.family("cpackd_tenant_bytes_total", "counter", "Request and response payload bytes, by tenant.")
		for _, id := range tenants {
			t := m.tenant(id)
			x.counter("cpackd_tenant_bytes_total", fmt.Sprintf("tenant=%q,direction=\"in\"", id), t.bytesIn.value())
			x.counter("cpackd_tenant_bytes_total", fmt.Sprintf("tenant=%q,direction=\"out\"", id), t.bytesOut.value())
		}
		x.family("cpackd_tenant_limited_total", "counter", "Requests denied per tenant, by reason (rate, quota, queue).")
		for _, id := range tenants {
			limited := m.tenant(id).limitedByReason()
			reasons := make([]string, 0, len(limited))
			for reason := range limited {
				reasons = append(reasons, reason)
			}
			sort.Strings(reasons)
			for _, reason := range reasons {
				x.counter("cpackd_tenant_limited_total", fmt.Sprintf("tenant=%q,reason=%q", id, reason), limited[reason])
			}
		}
	}

	x.family("cpackd_auth_failures_total", "counter", "Requests rejected 401, by auth kind.")
	x.counter("cpackd_auth_failures_total", "kind=\"api\"", m.authFailures.value())
	x.counter("cpackd_auth_failures_total", "kind=\"internal\"", m.internalAuthFailures.value())

	x.family("cpackd_queue_depth", "gauge", "Jobs queued but not yet running, by pool.")
	x.gaugeInt("cpackd_queue_depth", "pool=\"light\"", int64(s.light.depth()))
	x.gaugeInt("cpackd_queue_depth", "pool=\"heavy\"", int64(s.heavy.depth()))
	x.family("cpackd_tenant_queue_depth", "gauge", "Queued jobs per tenant, by pool (backlogged tenants only).")
	for _, p := range []*pool{s.light, s.heavy} {
		depths := p.tenantDepths()
		ids := make([]string, 0, len(depths))
		for id := range depths {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			x.gaugeInt("cpackd_tenant_queue_depth", fmt.Sprintf("tenant=%q,pool=%q", id, p.name), int64(depths[id]))
		}
	}

	x.family("cpackd_requests_shed_total", "counter", "Requests rejected with 429 because a pool was saturated.")
	x.counter("cpackd_requests_shed_total", "", m.shed.value())
	x.family("cpackd_request_timeouts_total", "counter", "Requests that exceeded their deadline.")
	x.counter("cpackd_request_timeouts_total", "", m.timeouts.value())

	x.eof()
}

// sloStateValue maps an SLO state string to its gauge value.
func sloStateValue(state string) int {
	switch state {
	case "warn":
		return 1
	case "page":
		return 2
	}
	return 0
}
