package obs

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ProfilerConfig parameterizes the triggered profiler.
type ProfilerConfig struct {
	// Dir is the on-disk profile ring directory (required; created if
	// missing).
	Dir string
	// MaxCaptures bounds the ring: older capture sets are evicted once
	// more than this many exist (0 = 8).
	MaxCaptures int
	// CPUDuration is how long each CPU profile runs (0 = 2s).
	CPUDuration time.Duration
	// Cooldown debounces triggers: a trigger landing within Cooldown of
	// the previous capture's start is dropped (0 = 1m).
	Cooldown time.Duration
	// Logger receives capture/evict events (nil = slog.Default()).
	Logger *slog.Logger
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (c ProfilerConfig) withDefaults() ProfilerConfig {
	if c.MaxCaptures <= 0 {
		c.MaxCaptures = 8
	}
	if c.CPUDuration <= 0 {
		c.CPUDuration = 2 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Minute
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Capture describes one capture set in the ring.
type Capture struct {
	Seq    uint64    `json:"seq"`
	Reason string    `json:"reason"`
	Start  time.Time `json:"start"`
	Files  []string  `json:"files"`
}

// Profiler snapshots CPU/heap/goroutine profiles into a bounded
// on-disk ring when triggered — by an SLO burn alert or a slow trace —
// so the evidence for a regression exists before anyone attaches a
// debugger. Triggers never block the caller: they post to a 1-deep
// channel drained by a single capture goroutine, and triggers landing
// during a capture or inside the cooldown are counted and dropped.
type Profiler struct {
	cfg ProfilerConfig

	trigger  chan string
	stopCh   chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	triggered atomic.Uint64
	captured  atomic.Uint64
	dropped   atomic.Uint64
	evicted   atomic.Uint64

	mu       sync.Mutex
	seq      uint64
	lastCap  time.Time
	captures []Capture // oldest first
}

// NewProfiler builds the profiler and starts its capture goroutine.
// Existing capture files in Dir are adopted into the ring so restarts
// keep evicting oldest-first.
func NewProfiler(cfg ProfilerConfig) (*Profiler, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("obs: profiler needs a directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: profile dir: %w", err)
	}
	p := &Profiler{
		cfg:     cfg,
		trigger: make(chan string, 1),
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
	}
	p.adoptExisting()
	go p.loop()
	return p, nil
}

// adoptExisting rebuilds the capture list from files already on disk,
// grouped by their "<unixnano>-<seq>-<reason>." prefix.
func (p *Profiler) adoptExisting() {
	entries, err := os.ReadDir(p.cfg.Dir)
	if err != nil {
		return
	}
	groups := map[string]*Capture{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".pprof") {
			continue
		}
		parts := strings.SplitN(name, "-", 3)
		if len(parts) != 3 {
			continue
		}
		var ns int64
		var seq uint64
		if _, err := fmt.Sscanf(parts[0], "%d", &ns); err != nil {
			continue
		}
		fmt.Sscanf(parts[1], "%d", &seq)
		key := parts[0] + "-" + parts[1]
		g := groups[key]
		if g == nil {
			reason := parts[2]
			if i := strings.Index(reason, "."); i >= 0 {
				reason = reason[:i]
			}
			g = &Capture{Seq: seq, Reason: reason, Start: time.Unix(0, ns)}
			groups[key] = g
		}
		g.Files = append(g.Files, name)
	}
	for _, g := range groups {
		sort.Strings(g.Files)
		p.captures = append(p.captures, *g)
		if g.Seq >= p.seq {
			p.seq = g.Seq + 1
		}
	}
	sort.Slice(p.captures, func(i, j int) bool { return p.captures[i].Start.Before(p.captures[j].Start) })
	p.evictLocked()
}

// Trigger requests a capture. It never blocks: when a capture is
// already queued or running the trigger is dropped (and counted).
func (p *Profiler) Trigger(reason string) {
	if p == nil {
		return
	}
	p.triggered.Add(1)
	select {
	case p.trigger <- reason:
	default:
		p.dropped.Add(1)
	}
}

func (p *Profiler) loop() {
	defer close(p.done)
	for {
		select {
		case <-p.stopCh:
			return
		case reason := <-p.trigger:
			p.mu.Lock()
			inCooldown := !p.lastCap.IsZero() && p.cfg.Now().Sub(p.lastCap) < p.cfg.Cooldown
			p.mu.Unlock()
			if inCooldown {
				p.dropped.Add(1)
				continue
			}
			p.capture(reason)
		}
	}
}

// sanitizeReason bounds what a trigger reason can put in a filename.
func sanitizeReason(s string) string {
	var b strings.Builder
	for i := 0; i < len(s) && b.Len() < 32; i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' {
			b.WriteByte(c)
		} else if c >= 'A' && c <= 'Z' {
			b.WriteByte(c + 'a' - 'A')
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "manual"
	}
	return b.String()
}

// capture writes one CPU + heap + goroutine profile set and evicts the
// oldest sets past MaxCaptures.
func (p *Profiler) capture(reason string) {
	start := p.cfg.Now()
	p.mu.Lock()
	seq := p.seq
	p.seq++
	p.lastCap = start
	p.mu.Unlock()

	reason = sanitizeReason(reason)
	prefix := fmt.Sprintf("%d-%d-%s", start.UnixNano(), seq, reason)
	set := Capture{Seq: seq, Reason: reason, Start: start}

	// CPU first: StartCPUProfile fails if another CPU profile is active
	// (e.g. someone is on /debug/pprof/profile); keep the heap and
	// goroutine snapshots regardless.
	cpuName := prefix + ".cpu.pprof"
	if f, err := os.Create(filepath.Join(p.cfg.Dir, cpuName)); err == nil {
		if err := pprof.StartCPUProfile(f); err != nil {
			p.cfg.Logger.Warn("profile capture: cpu profile unavailable", "err", err)
			f.Close()
			os.Remove(filepath.Join(p.cfg.Dir, cpuName))
		} else {
			timer := time.NewTimer(p.cfg.CPUDuration)
			select {
			case <-timer.C:
			case <-p.stopCh:
				timer.Stop()
			}
			pprof.StopCPUProfile()
			f.Close()
			set.Files = append(set.Files, cpuName)
		}
	}
	for _, kind := range []string{"heap", "goroutine"} {
		name := prefix + "." + kind + ".pprof"
		f, err := os.Create(filepath.Join(p.cfg.Dir, name))
		if err != nil {
			continue
		}
		if prof := pprof.Lookup(kind); prof != nil {
			if err := prof.WriteTo(f, 0); err == nil {
				set.Files = append(set.Files, name)
			}
		}
		f.Close()
	}

	p.mu.Lock()
	p.captures = append(p.captures, set)
	p.evictLocked()
	p.mu.Unlock()
	p.captured.Add(1)
	p.cfg.Logger.Info("profile capture", "reason", reason, "seq", seq, "files", len(set.Files))
}

// evictLocked removes the oldest capture sets beyond MaxCaptures.
// Caller holds mu.
func (p *Profiler) evictLocked() {
	for len(p.captures) > p.cfg.MaxCaptures {
		victim := p.captures[0]
		p.captures = p.captures[1:]
		for _, f := range victim.Files {
			os.Remove(filepath.Join(p.cfg.Dir, f))
		}
		p.evicted.Add(1)
	}
}

// Close stops the capture goroutine, interrupting any in-flight CPU
// profile.
func (p *Profiler) Close() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() { close(p.stopCh) })
	<-p.done
}

// ProfilerStats is the profiler's counter snapshot for /debug/vars and
// /metrics.
type ProfilerStats struct {
	Triggered uint64 `json:"triggered"`
	Captured  uint64 `json:"captured"`
	Dropped   uint64 `json:"dropped"`
	Evicted   uint64 `json:"evicted"`
	Retained  int    `json:"retained"`
}

// Stats snapshots the trigger/capture counters.
func (p *Profiler) Stats() ProfilerStats {
	if p == nil {
		return ProfilerStats{}
	}
	p.mu.Lock()
	retained := len(p.captures)
	p.mu.Unlock()
	return ProfilerStats{
		Triggered: p.triggered.Load(),
		Captured:  p.captured.Load(),
		Dropped:   p.dropped.Load(),
		Evicted:   p.evicted.Load(),
		Retained:  retained,
	}
}

// Captures lists the ring's capture sets, oldest first.
func (p *Profiler) Captures() []Capture {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Capture, len(p.captures))
	copy(out, p.captures)
	return out
}

// Handler serves the profile ring on the private debug listener:
// "GET <prefix>/" lists captures as JSON, "GET <prefix>/<file>" streams
// a profile. File names are validated against the ring, so the handler
// cannot be steered outside Dir.
func (p *Profiler) Handler(prefix string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, prefix)
		rest = strings.TrimPrefix(rest, "/")
		if rest == "" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				Stats    ProfilerStats `json:"stats"`
				Captures []Capture     `json:"captures"`
			}{p.Stats(), p.Captures()})
			return
		}
		if !p.owns(rest) {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		http.ServeFile(w, r, filepath.Join(p.cfg.Dir, rest))
	})
}

// owns reports whether name is a file currently tracked by the ring.
func (p *Profiler) owns(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.captures {
		for _, f := range c.Files {
			if f == name {
				return true
			}
		}
	}
	return false
}
