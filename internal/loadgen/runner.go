package loadgen

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"
	"time"
)

// Options parameterize one run.
type Options struct {
	// Scenario generates the request stream. Required.
	Scenario Scenario
	// Executor performs requests. Required.
	Executor Executor
	// Metrics, when non-nil, is scraped before and after the run; the
	// report then carries the deltas. A scrape error downgrades to a
	// missing server section, it never fails the run.
	Metrics MetricsSource

	// Seed replays a specific request stream (same seed = same stream).
	Seed int64
	// QPS is the open-loop arrival rate. Required (> 0).
	QPS float64
	// Duration is the measured window. Required (> 0).
	Duration time.Duration
	// Warmup runs ahead of the measured window: its requests are sent
	// and counted separately but excluded from latency and throughput.
	Warmup time.Duration
	// Concurrency bounds in-flight requests (0 = 16). When every worker
	// is busy, arrivals queue — and their latency keeps accruing from
	// the intended send time, which is the coordinated-omission fix.
	Concurrency int
	// Target labels the report (e.g. the base URL).
	Target string
}

func (o Options) validate() error {
	switch {
	case o.Scenario == nil:
		return errors.New("loadgen: Options.Scenario is required")
	case o.Executor == nil:
		return errors.New("loadgen: Options.Executor is required")
	case o.QPS <= 0:
		return fmt.Errorf("loadgen: QPS must be positive, got %g", o.QPS)
	case o.Duration <= 0:
		return fmt.Errorf("loadgen: Duration must be positive, got %v", o.Duration)
	case o.Warmup < 0:
		return fmt.Errorf("loadgen: Warmup must be non-negative, got %v", o.Warmup)
	case o.Concurrency < 0:
		return fmt.Errorf("loadgen: Concurrency must be non-negative, got %d", o.Concurrency)
	}
	return nil
}

// job is one scheduled request: the payload plus the instant the open
// loop intended to send it.
type job struct {
	req      Request
	intended time.Time
}

// statusCounts aggregates op -> status -> count. Transport errors count
// under the pseudo-status "error".
type statusCounts struct {
	mu   sync.Mutex
	byOp map[string]map[string]uint64
}

func newStatusCounts() *statusCounts {
	return &statusCounts{byOp: make(map[string]map[string]uint64)}
}

func (s *statusCounts) record(op, status string) {
	s.mu.Lock()
	m := s.byOp[op]
	if m == nil {
		m = make(map[string]uint64)
		s.byOp[op] = m
	}
	m[status]++
	s.mu.Unlock()
}

func (s *statusCounts) snapshot() map[string]map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]map[string]uint64, len(s.byOp))
	for op, m := range s.byOp {
		c := make(map[string]uint64, len(m))
		for k, v := range m {
			c[k] = v
		}
		out[op] = c
	}
	return out
}

// tenantTracker aggregates the measured window per tenant label. Only
// engaged when the scenario emits tenant-labelled requests.
type tenantTracker struct {
	mu   sync.Mutex
	recs map[string]*Recorder
	by   map[string]map[string]uint64 // tenant -> status -> count
	good map[string]uint64            // tenant -> 2xx count
}

func newTenantTracker() *tenantTracker {
	return &tenantTracker{
		recs: make(map[string]*Recorder),
		by:   make(map[string]map[string]uint64),
		good: make(map[string]uint64),
	}
}

func (t *tenantTracker) record(tenant, status string, ok2xx bool, lat time.Duration) {
	t.mu.Lock()
	rec := t.recs[tenant]
	if rec == nil {
		rec = NewRecorder()
		t.recs[tenant] = rec
		t.by[tenant] = make(map[string]uint64)
	}
	t.by[tenant][status]++
	if ok2xx {
		t.good[tenant]++
	}
	t.mu.Unlock()
	rec.Observe(lat)
}

// report assembles the per-tenant section plus Jain's fairness index
// over weight-normalized goodput. Specs supply weights (absent tenants
// default to weight 1).
func (t *tenantTracker) report(specs map[string]TenantSpec, window time.Duration) (map[string]*TenantReport, float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.recs) == 0 {
		return nil, 0
	}
	out := make(map[string]*TenantReport, len(t.recs))
	var sum, sumSq float64
	for name, rec := range t.recs {
		weight := 1
		if sp, ok := specs[name]; ok && sp.Weight > 0 {
			weight = sp.Weight
		}
		var sent uint64
		for _, n := range t.by[name] {
			sent += n
		}
		good := float64(t.good[name]) / window.Seconds()
		out[name] = &TenantReport{
			Weight:     weight,
			Requests:   sent,
			ByStatus:   t.by[name],
			GoodputRPS: good,
			Latency:    rec.Snapshot(),
		}
		x := good / float64(weight)
		sum += x
		sumSq += x * x
	}
	fairness := 0.0
	if n := float64(len(out)); sumSq > 0 {
		fairness = sum * sum / (n * sumSq) // Jain's index: 1 = perfectly fair
	}
	return out, fairness
}

// Run drives one scenario open loop and returns its report.
//
// Arrival i's intended send time is start + i/QPS, fixed up front; the
// scheduler sleeps until each instant and enqueues the request whether or
// not a worker is free. Workers record latency as completion minus
// *intended* time, so server stalls surface as the queueing delay a
// schedule-faithful client would have seen (no coordinated omission).
// The jobs channel is sized for the whole schedule, so the scheduler
// itself never blocks on a slow server.
func Run(ctx context.Context, o Options) (*Report, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if o.Concurrency == 0 {
		o.Concurrency = 16
	}

	interval := time.Duration(float64(time.Second) / o.QPS)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	total := int(float64(o.Warmup+o.Duration) / float64(interval))
	if total < 1 {
		total = 1
	}

	var before ServerStats
	haveMetrics := false
	if o.Metrics != nil {
		if st, err := o.Metrics.ServerStats(ctx); err == nil {
			before, haveMetrics = st, true
		}
	}

	rec := NewRecorder()
	measured := newStatusCounts()
	warmup := newStatusCounts()
	tenants := newTenantTracker()
	var errorsN, completedN, warmupN uint64
	var countMu sync.Mutex

	jobs := make(chan job, total)
	var wg sync.WaitGroup
	start := time.Now()
	warmEnd := start.Add(o.Warmup)
	for w := 0; w < o.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				status, err := o.Executor.Do(ctx, j.req)
				done := time.Now()
				inWarmup := j.intended.Before(warmEnd)
				label := "error"
				if err == nil {
					label = fmt.Sprintf("%d", status)
				}
				if inWarmup {
					warmup.record(j.req.Op, label)
					countMu.Lock()
					warmupN++
					countMu.Unlock()
					continue
				}
				measured.record(j.req.Op, label)
				countMu.Lock()
				if err != nil {
					errorsN++
				} else {
					completedN++
				}
				countMu.Unlock()
				lat := done.Sub(j.intended)
				rec.Observe(lat)
				if j.req.Tenant != "" {
					tenants.record(j.req.Tenant, label,
						err == nil && status >= 200 && status < 300, lat)
				}
			}
		}()
	}

	next, stop := iter.Pull(o.Scenario.Requests(o.Seed))
	sent := 0
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
schedule:
	for i := 0; i < total; i++ {
		intended := start.Add(time.Duration(i) * interval)
		if d := time.Until(intended); d > 0 {
			timer.Reset(d)
			select {
			case <-ctx.Done():
				break schedule
			case <-timer.C:
			}
		} else if ctx.Err() != nil {
			break schedule
		}
		req, ok := next()
		if !ok {
			break
		}
		jobs <- job{req: req, intended: intended}
		sent++
	}
	stop()
	close(jobs)
	wg.Wait()
	end := time.Now()

	measuredWindow := end.Sub(warmEnd)
	if measuredWindow <= 0 {
		measuredWindow = time.Nanosecond
	}

	rep := &Report{
		Schema:   ReportSchema,
		Scenario: o.Scenario.Name(),
		Describe: o.Scenario.Describe(),
		Seed:     o.Seed,
		Config: RunConfig{
			Target:      o.Target,
			QPS:         o.QPS,
			DurationSec: o.Duration.Seconds(),
			WarmupSec:   o.Warmup.Seconds(),
			Concurrency: o.Concurrency,
		},
		Sent:            sent,
		WarmupRequests:  warmupN,
		Completed:       completedN,
		TransportErrors: errorsN,
		ByOp:            measured.snapshot(),
		ThroughputRPS:   float64(completedN+errorsN) / measuredWindow.Seconds(),
		Latency:         rec.Snapshot(),
	}
	var specs map[string]TenantSpec
	if ts, ok := o.Scenario.(TenantScenario); ok {
		specs = ts.Tenants()
	}
	rep.Tenants, rep.Fairness = tenants.report(specs, measuredWindow)
	if haveMetrics {
		if after, err := o.Metrics.ServerStats(ctx); err == nil {
			rep.Server = diffServerStats(before, after)
		}
	}
	if ctx.Err() != nil && sent == 0 {
		return rep, ctx.Err()
	}
	return rep, nil
}

// diffServerStats turns two cumulative scrapes into a report delta.
func diffServerStats(before, after ServerStats) *ServerDelta {
	sub := func(a, b uint64) uint64 {
		if a < b {
			return 0 // counter reset (server restarted mid-run)
		}
		return a - b
	}
	d := &ServerDelta{
		CacheHits:   sub(after.CacheHits, before.CacheHits),
		CacheMisses: sub(after.CacheMisses, before.CacheMisses),
		Shed:        sub(after.Shed, before.Shed),
		Coalesced:   sub(after.Coalesced, before.Coalesced),
		PeerHits:    sub(after.PeerHits, before.PeerHits),
		PeerMisses:  sub(after.PeerMisses, before.PeerMisses),
		// The SLO state is a gauge: report the post-run value, not a diff.
		SLOWorstState: after.SLOWorstState,
	}
	if lookups := d.CacheHits + d.CacheMisses; lookups > 0 {
		d.HitRate = float64(d.CacheHits) / float64(lookups)
		warm := d.CacheHits + d.PeerHits
		if warm > lookups {
			warm = lookups // peer hits can race the lookup counters slightly
		}
		d.WarmRate = float64(warm) / float64(lookups)
	}
	return d
}
