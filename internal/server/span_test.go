package server

import (
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"codepack/internal/peer"
	"codepack/internal/trace"
)

// spanByName indexes a trace's spans by name; every span name in a
// single compress-miss trace is unique, so collisions fail the test.
func spanByName(t *testing.T, tr trace.Trace) map[string]trace.SpanData {
	t.Helper()
	out := make(map[string]trace.SpanData, len(tr.Spans))
	for _, s := range tr.Spans {
		if _, dup := out[s.Name]; dup {
			t.Fatalf("duplicate span name %q in trace:\n%s", s.Name, tr.Tree())
		}
		out[s.Name] = s
	}
	return out
}

// lastTrace polls the server's ring for the newest trace through
// endpoint (the root span ends after the response is written, so the
// trace can land just after the client sees the reply).
func lastTrace(t *testing.T, s *Server, endpoint string) trace.Trace {
	t.Helper()
	waitFor(t, func() bool { return len(s.tracer.Recent(0, endpoint, 1)) > 0 })
	return s.tracer.Recent(0, endpoint, 1)[0]
}

// TestCompressMissSpanTree is the golden span tree: one cache-miss
// compression on a standalone server must produce every serving stage as
// a span with the documented parentage —
//
//	handler
//	  queue-wait
//	  resolve-image
//	  cache-lookup            outcome=miss
//	  fill
//	    cache-recheck         outcome=miss
//	    compress
//	      dict-build
//	      encode
//	      index-build
func TestCompressMissSpanTree(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/compress", CompressRequest{ProgramRef: ProgramRef{Asm: testAsm}}).Body.Close()

	tr := lastTrace(t, s, "compress")
	spans := spanByName(t, tr)

	parentage := map[string]string{
		"handler":       "",
		"queue-wait":    "handler",
		"resolve-image": "handler",
		"cache-lookup":  "handler",
		"fill":          "handler",
		"cache-recheck": "fill",
		"compress":      "fill",
		"dict-build":    "compress",
		"encode":        "compress",
		"index-build":   "compress",
	}
	for name, wantParent := range parentage {
		sp, ok := spans[name]
		if !ok {
			t.Errorf("span %q missing from trace:\n%s", name, tr.Tree())
			continue
		}
		wantID := ""
		if wantParent != "" {
			wantID = spans[wantParent].ID
		}
		if sp.Parent != wantID {
			t.Errorf("span %q parented on %q, want %q:\n%s", name, sp.Parent, wantParent, tr.Tree())
		}
	}
	if tr.Spans[0].Name != "handler" {
		t.Errorf("root span is %q, want handler", tr.Spans[0].Name)
	}
	if tr.RemoteParent != "" {
		t.Errorf("standalone request has remote parent %q", tr.RemoteParent)
	}
	for _, probe := range []struct{ span, attr string; want any }{
		{"cache-lookup", "outcome", "miss"},
		{"cache-recheck", "outcome", "miss"},
		{"handler", "status", http.StatusOK},
	} {
		if got := spans[probe.span].Attrs[probe.attr]; got != probe.want {
			t.Errorf("span %q attr %q = %v, want %v", probe.span, probe.attr, got, probe.want)
		}
	}
}

// TestSpanPropagatesAcrossPeerFetch stitches a cross-node trace: a miss
// on the non-owner fetches from the owner carrying X-Cpackd-Span, so the
// owner's peer_get trace shares the trace ID and is remote-parented on
// the fetcher's per-attempt span.
func TestSpanPropagatesAcrossPeerFetch(t *testing.T) {
	sa, sb, urlA, urlB := startPair(t, Config{}, Config{})
	ring := peer.NewRing([]string{urlA, urlB}, peer.DefaultReplicas)
	im := imageOwnedBy(t, ring, urlA)

	// B misses, consults owner A (which also misses), compresses locally.
	compressImageOn(t, urlB, im)

	btr := lastTrace(t, sb, "compress")
	spans := spanByName(t, btr)
	fetch, ok := spans["peer-fetch"]
	if !ok {
		t.Fatalf("fetcher trace has no peer-fetch span:\n%s", btr.Tree())
	}
	if fetch.Attrs["owner"] != urlA || fetch.Attrs["outcome"] != "miss" {
		t.Errorf("peer-fetch attrs = %v, want owner=%s outcome=miss", fetch.Attrs, urlA)
	}
	// The walk opens one peer-replica span per replica tried (R=1 here),
	// carrying the breaker state, with the attempts underneath it.
	replica, ok := spans["peer-replica"]
	if !ok {
		t.Fatalf("fetcher trace has no peer-replica span:\n%s", btr.Tree())
	}
	if replica.Parent != fetch.ID {
		t.Errorf("peer-replica parented on %q, want peer-fetch %q", replica.Parent, fetch.ID)
	}
	if _, ok := replica.Attrs["breaker"]; !ok {
		t.Errorf("peer-replica span missing breaker attr: %v", replica.Attrs)
	}
	if replica.Attrs["outcome"] != "miss" {
		t.Errorf("peer-replica outcome = %v, want miss", replica.Attrs["outcome"])
	}
	attempt, ok := spans["peer-attempt"]
	if !ok {
		t.Fatalf("fetcher trace has no peer-attempt span:\n%s", btr.Tree())
	}
	if attempt.Parent != replica.ID {
		t.Errorf("peer-attempt parented on %q, want peer-replica %q", attempt.Parent, replica.ID)
	}

	atr := lastTrace(t, sa, "peer_get")
	if atr.TraceID != btr.TraceID {
		t.Errorf("owner trace ID %q != fetcher trace ID %q", atr.TraceID, btr.TraceID)
	}
	if atr.RemoteParent != attempt.ID {
		t.Errorf("owner remote parent %q, want the fetcher's attempt span %q", atr.RemoteParent, attempt.ID)
	}
	if atr.Spans[0].Parent != attempt.ID {
		t.Errorf("owner root span parented on %q, want %q", atr.Spans[0].Parent, attempt.ID)
	}
}

var stageLabelRE = regexp.MustCompile(`(?m)^cpackd_stage_duration_seconds_count\{stage="([^"]+)"\} ([0-9]+)$`)

// TestStageHistogramsRendered: one compression populates at least five
// distinct stage labels (the acceptance floor), every rendered count is
// non-zero, and the trace counter ticks.
func TestStageHistogramsRendered(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/compress", CompressRequest{ProgramRef: ProgramRef{Asm: testAsm}}).Body.Close()

	var body string
	waitFor(t, func() bool {
		body = scrape(t, ts)
		return len(stageLabelRE.FindAllString(body, -1)) >= 5
	})
	stages := make(map[string]bool)
	for _, m := range stageLabelRE.FindAllStringSubmatch(body, -1) {
		stages[m[1]] = true
		if m[2] == "0" {
			t.Errorf("stage %q rendered with zero observations", m[1])
		}
	}
	for _, want := range []string{"handler", "cache-lookup", "compress", "encode", "queue-wait"} {
		if !stages[want] {
			t.Errorf("stage label %q missing; got %v", want, stages)
		}
	}
	if n := metricValue(t, body, "cpackd_traces_recorded_total"); n < 1 {
		t.Errorf("cpackd_traces_recorded_total = %v, want >= 1", n)
	}
}

// TestCacheGaugesTrackEntries pins the cache gauges the metrics audit
// found already present: entries and resident bytes move with the cache.
func TestCacheGaugesTrackEntries(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if n := scrapeMetric(t, ts, "cpackd_cache_entries"); n != 0 {
		t.Fatalf("fresh cache reports %v entries", n)
	}
	resp := postJSON(t, ts.URL+"/v1/compress", CompressRequest{ProgramRef: ProgramRef{Asm: testAsm}})
	out := decodeBody[CompressResponse](t, resp, http.StatusOK)
	if n := scrapeMetric(t, ts, "cpackd_cache_entries"); n != 1 {
		t.Errorf("cpackd_cache_entries = %v after one compression, want 1", n)
	}
	if b := scrapeMetric(t, ts, "cpackd_cache_bytes"); b <= 0 {
		t.Errorf("cpackd_cache_bytes = %v, want > 0", b)
	}
	_ = out
}

// TestSlowTraceLogged: requests slower than TraceSlow log their full
// span tree, so a slow request explains itself without a debug port.
func TestSlowTraceLogged(t *testing.T) {
	var buf syncBuffer
	log := slog.New(slog.NewTextHandler(&buf, nil))
	_, ts := newTestServer(t, Config{Logger: log, TraceSlow: time.Nanosecond})
	postJSON(t, ts.URL+"/v1/compress", CompressRequest{ProgramRef: ProgramRef{Asm: testAsm}}).Body.Close()

	waitFor(t, func() bool { return strings.Contains(buf.String(), "slow trace") })
	got := buf.String()
	for _, want := range []string{"handler", "cache-lookup", "compress", "encode"} {
		if !strings.Contains(got, want) {
			t.Errorf("slow-trace log missing span %q:\n%s", want, got)
		}
	}
}

// TestTracingDisabled: a negative capacity turns the subsystem off — the
// server still serves, and the ring endpoint reports 404.
func TestTracingDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{TraceCapacity: -1})
	if s.tracer != nil {
		t.Fatal("TraceCapacity -1 still built a tracer")
	}
	resp := postJSON(t, ts.URL+"/v1/compress", CompressRequest{ProgramRef: ProgramRef{Asm: testAsm}})
	decodeBody[CompressResponse](t, resp, http.StatusOK)

	rec := httptest.NewRecorder()
	s.DebugHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/trace/recent", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("/debug/trace/recent with tracing off returned %d, want 404", rec.Code)
	}
}
