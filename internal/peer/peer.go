// Package peer turns independent cpackd instances into a cooperative
// compression cache cluster — a shared warm tier over the service's
// content-addressed cache.
//
// Every member runs the same static member list through a
// consistent-hash Ring keyed by the SHA-256 content digest, so the
// fleet agrees on one owner per digest with no coordination. On a local
// cache miss an instance first asks the digest's owner over HTTP
// (GET /internal/v1/cache/{digest}) before paying for a compression;
// when it does compress something new, it replicates the entry to the
// owner asynchronously, off the request path. A freshly (re)started
// instance runs an anti-entropy pass, offering every digest it holds to
// the ring so warm state flows back to its owners.
//
// Failure handling is local and bounded: per-attempt timeouts, a small
// number of retries with jittered backoff, and a per-peer circuit
// breaker that opens after consecutive failures (requests then skip the
// peer entirely and fall back to local compression) and probes the peer
// back to health after a cooldown. A slow or dead peer can cost one
// fetch timeout per cooldown, never availability.
//
// Trust: the transport checks an end-to-end SHA-256 of every payload
// (the same per-record sum the durable store uses), and the caller in
// internal/server decompresses each peer-served payload and compares it
// word-for-word against the program it is about to answer for — so a
// misbehaving peer can waste work but can never poison a cache.
package peer

import (
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for Config zero values.
const (
	DefaultFetchTimeout       = 2 * time.Second
	DefaultRetries            = 1
	DefaultBackoffBase        = 25 * time.Millisecond
	DefaultBreakerThreshold   = 3
	DefaultBreakerCooldown    = 5 * time.Second
	DefaultReplicationQueue   = 256
	DefaultReplicationWorkers = 2
	DefaultOfferBatch         = 256
)

// maxPayloadBytes caps a peer-served payload read; it matches the
// durable store's per-record sanity cap.
const maxPayloadBytes = 64 << 20

// Config parameterizes a Cluster. Self and Peers are required; zero
// values elsewhere pick the defaults above.
type Config struct {
	// Self is this instance's advertised base URL (scheme://host:port),
	// the identity under which it appears in the ring.
	Self string
	// Peers lists the other members' base URLs. It may also include
	// Self; the ring is always built over the union. Every member must
	// be configured with the same resulting set or owners will disagree.
	Peers []string

	// Replicas is the virtual-node count per member (0 = DefaultReplicas).
	Replicas int

	// FetchTimeout bounds one fetch or replication attempt.
	FetchTimeout time.Duration
	// Retries is the number of extra attempts after the first for an
	// owner fetch (negative = none).
	Retries int
	// BackoffBase is the first retry's backoff; it doubles per attempt
	// with up to 50% added jitter.
	BackoffBase time.Duration

	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's circuit breaker; BreakerCooldown how long it stays open
	// before a probe.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// ReplicationQueue and ReplicationWorkers size the async
	// write-replication stage; a full queue drops (replication is
	// best-effort — anti-entropy repairs the gaps).
	ReplicationQueue   int
	ReplicationWorkers int

	// OfferBatch caps the digests per anti-entropy offer request.
	OfferBatch int

	// Logger receives peer-traffic warnings (nil = slog.Default()).
	Logger *slog.Logger
	// Transport overrides the HTTP transport (tests).
	Transport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = DefaultFetchTimeout
	}
	if c.Retries == 0 {
		c.Retries = DefaultRetries
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	if c.ReplicationQueue <= 0 {
		c.ReplicationQueue = DefaultReplicationQueue
	}
	if c.ReplicationWorkers <= 0 {
		c.ReplicationWorkers = DefaultReplicationWorkers
	}
	if c.OfferBatch <= 0 {
		c.OfferBatch = DefaultOfferBatch
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Cluster is one instance's view of the warm tier: the ring, one
// breaker and HTTP client per peer, and the async replication stage.
type Cluster struct {
	cfg    Config
	self   string
	ring   *Ring
	client *http.Client
	log    *slog.Logger

	breakers map[string]*breaker // keyed by peer URL; static after NewCluster

	replCh    chan replJob
	replWG    sync.WaitGroup
	closeOnce sync.Once

	stats clusterStats
}

type replJob struct {
	owner   string
	digest  string
	payload []byte
}

// clusterStats are the Cluster's lifetime counters; read via Stats.
type clusterStats struct {
	fetchHits    atomic.Uint64
	fetchMisses  atomic.Uint64
	fetchErrors  atomic.Uint64
	breakerSkips atomic.Uint64

	replEnqueued atomic.Uint64
	replSent     atomic.Uint64
	replDropped  atomic.Uint64
	replErrors   atomic.Uint64

	offeredDigests atomic.Uint64
	offerErrors    atomic.Uint64
}

// Stats is a point-in-time snapshot of the cluster counters.
type Stats struct {
	FetchHits    uint64 `json:"fetch_hits"`
	FetchMisses  uint64 `json:"fetch_misses"`
	FetchErrors  uint64 `json:"fetch_errors"`
	BreakerSkips uint64 `json:"breaker_skips"`

	ReplicationsEnqueued uint64 `json:"replications_enqueued"`
	ReplicationsSent     uint64 `json:"replications_sent"`
	ReplicationsDropped  uint64 `json:"replications_dropped"`
	ReplicationErrors    uint64 `json:"replication_errors"`

	OfferedDigests uint64 `json:"offered_digests"`
	OfferErrors    uint64 `json:"offer_errors"`
}

// NewCluster validates the member list, builds the ring and starts the
// replication workers.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, fmt.Errorf("peer: Self is required")
	}
	members := append([]string{cfg.Self}, cfg.Peers...)
	for _, m := range members {
		u, err := url.Parse(m)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("peer: member %q is not a base URL (want scheme://host:port)", m)
		}
	}
	ring := NewRing(members, cfg.Replicas)
	if len(ring.Members()) < 2 {
		return nil, fmt.Errorf("peer: need at least one peer besides Self")
	}
	c := &Cluster{
		cfg:      cfg,
		self:     cfg.Self,
		ring:     ring,
		client:   &http.Client{Transport: cfg.Transport},
		log:      cfg.Logger,
		breakers: make(map[string]*breaker),
		replCh:   make(chan replJob, cfg.ReplicationQueue),
	}
	for _, m := range ring.Members() {
		if m != c.self {
			c.breakers[m] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
		}
	}
	c.replWG.Add(cfg.ReplicationWorkers)
	for i := 0; i < cfg.ReplicationWorkers; i++ {
		go c.replWorker()
	}
	return c, nil
}

// Self returns this instance's ring identity.
func (c *Cluster) Self() string { return c.self }

// Owner returns the ring owner of digest.
func (c *Cluster) Owner(digest string) string { return c.ring.Owner(digest) }

// Members returns the full member list (including Self).
func (c *Cluster) Members() []string { return c.ring.Members() }

// Close stops the replication workers; queued jobs are drained (each is
// one bounded HTTP attempt, breaker-gated, so this terminates quickly
// even with dead peers).
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		close(c.replCh)
		c.replWG.Wait()
	})
}

// Stats returns a snapshot of the cluster counters.
func (c *Cluster) Stats() Stats {
	return Stats{
		FetchHits:            c.stats.fetchHits.Load(),
		FetchMisses:          c.stats.fetchMisses.Load(),
		FetchErrors:          c.stats.fetchErrors.Load(),
		BreakerSkips:         c.stats.breakerSkips.Load(),
		ReplicationsEnqueued: c.stats.replEnqueued.Load(),
		ReplicationsSent:     c.stats.replSent.Load(),
		ReplicationsDropped:  c.stats.replDropped.Load(),
		ReplicationErrors:    c.stats.replErrors.Load(),
		OfferedDigests:       c.stats.offeredDigests.Load(),
		OfferErrors:          c.stats.offerErrors.Load(),
	}
}

// PeerHealth is one peer's breaker view for metrics.
type PeerHealth struct {
	URL   string `json:"url"`
	State string `json:"state"`
	Fails int    `json:"consecutive_failures"`
	Opens uint64 `json:"opens"`
}

// Health returns the breaker state of every peer, sorted by URL.
func (c *Cluster) Health() []PeerHealth {
	out := make([]PeerHealth, 0, len(c.breakers))
	for _, m := range c.ring.Members() {
		b, ok := c.breakers[m]
		if !ok {
			continue // self
		}
		snap := b.snapshot()
		out = append(out, PeerHealth{URL: m, State: snap.State, Fails: snap.Fails, Opens: snap.Opens})
	}
	return out
}

// ReportBadPayload records that owner served a payload that failed the
// caller's verification — it counts as a breaker failure exactly like a
// transport error, so a peer serving garbage gets cut off.
func (c *Cluster) ReportBadPayload(owner string) {
	if b, ok := c.breakers[owner]; ok {
		b.failure()
	}
	c.stats.fetchErrors.Add(1)
}
