package server

import (
	"net/http/httptest"
	"testing"
	"time"

	"codepack"
	"codepack/internal/peer"
)

// dynamicPeerConfig runs the membership loop at test speed: heartbeats
// every 25ms, suspicion in 150ms, death in 400ms — fast enough for
// waitFor, slow enough not to flap on a loaded CI box.
func dynamicPeerConfig(self string, seeds ...string) *peer.Config {
	return &peer.Config{
		Self:              self,
		Peers:             seeds,
		FetchTimeout:      500 * time.Millisecond,
		Retries:           -1,
		BackoffBase:       time.Millisecond,
		BreakerThreshold:  2,
		BreakerCooldown:   50 * time.Millisecond,
		HeartbeatInterval: 25 * time.Millisecond,
		SuspectAfter:      150 * time.Millisecond,
		DeadAfter:         400 * time.Millisecond,
	}
}

// TestPeerAntiEntropyOnRingChange is the regression pin for anti-entropy
// running on ring changes, not only at startup: A caches an entry while
// its seed B is dead (so A owns the whole ring and startup anti-entropy
// had nothing to ship); when B comes up and joins, the resulting ring
// change on A must push the entry to its new owner without any request
// traffic.
func TestPeerAntiEntropyOnRingChange(t *testing.T) {
	lnA, urlA := reserveURL(t)
	lnB, urlB := reserveURL(t)

	sa, err := New(Config{Logger: quietLogger(), Peer: dynamicPeerConfig(urlA, urlB)})
	if err != nil {
		t.Fatal(err)
	}
	startOn(t, sa, lnA)

	// B never answered: A's failure detector ages the seed out of the ring.
	waitFor(t, func() bool { return len(sa.cluster.Members()) == 1 })

	// An entry whose owner in the *two-member* ring is B, compressed on A
	// while A is alone — owned locally for now, no replication happens.
	full := peer.NewRing([]string{urlA, urlB}, peer.DefaultReplicas)
	im := imageOwnedBy(t, full, urlB)
	if resp := compressImageOn(t, urlA, im); resp.Cached {
		t.Fatal("first compression reported cached")
	}

	// B boots and joins via its seed A. The join is a ring change on A,
	// which must trigger an anti-entropy pass handing the entry to B.
	sb, err := New(Config{Logger: quietLogger(), Peer: dynamicPeerConfig(urlB, urlA)})
	if err != nil {
		t.Fatal(err)
	}
	startOn(t, sb, lnB)

	waitFor(t, func() bool { return len(sa.cluster.Members()) == 2 })
	waitFor(t, func() bool { return sb.cache.stats().Entries == 1 })

	resp := compressImageOn(t, urlB, im)
	if !resp.Cached {
		t.Error("entry pushed on ring change was not served from B's cache")
	}
	if got := metricValue(t, scrapeURL(t, urlB), "cpackd_peer_hits_total"); got != 0 {
		t.Errorf("cpackd_peer_hits_total on B = %v, want 0 (entry arrived via anti-entropy)", got)
	}
	body := scrapeURL(t, urlA)
	if got := metricValue(t, body, "cpackd_peer_ring_changes_total"); got < 2 {
		t.Errorf("cpackd_peer_ring_changes_total on A = %v, want >= 2 (death + rejoin)", got)
	}
	// Empty-cache passes are skipped before counting, so A's startup pass
	// (cache empty, B dead) never registered: the count is exactly the
	// ring-change passes that shipped data.
	if got := metricValue(t, body, "cpackd_peer_antientropy_passes_total"); got < 1 {
		t.Errorf("cpackd_peer_antientropy_passes_total on A = %v, want >= 1 (ring change)", got)
	}
}

// TestPeerGracefulLeaveHandsOff: a departing instance hands its digests
// to their post-departure owners during Close, so the survivor serves
// them warm with zero recompression.
func TestPeerGracefulLeaveHandsOff(t *testing.T) {
	lnA, urlA := reserveURL(t)
	lnB, urlB := reserveURL(t)

	// A is managed manually — the test closes it mid-flight.
	sa, err := New(Config{Logger: quietLogger(), Peer: dynamicPeerConfig(urlA, urlB)})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewUnstartedServer(sa.Handler())
	tsA.Listener.Close()
	tsA.Listener = lnA
	tsA.Start()
	sb, err := New(Config{Logger: quietLogger(), Peer: dynamicPeerConfig(urlB, urlA)})
	if err != nil {
		tsA.Close()
		sa.Close()
		t.Fatal(err)
	}
	startOn(t, sb, lnB)

	waitFor(t, func() bool {
		return len(sa.cluster.Members()) == 2 && len(sb.cluster.Members()) == 2
	})

	// Compressed on its owner A: stays local, never replicated to B.
	full := peer.NewRing([]string{urlA, urlB}, peer.DefaultReplicas)
	im := imageOwnedBy(t, full, urlA)
	digest := codepack.ImageDigest(im)
	if resp := compressImageOn(t, urlA, im); resp.Cached {
		t.Fatal("first compression reported cached")
	}
	if n := sb.cache.stats().Entries; n != 0 {
		t.Fatalf("entry reached B before the leave (entries = %d)", n)
	}

	// Graceful exit: the leave handoff runs while A's endpoints still
	// answer, then the daemon is gone.
	sa.Close()
	tsA.Close()

	if _, ok := sb.cache.payload(digest); !ok {
		t.Fatal("departing member did not hand its entry to the survivor")
	}
	waitFor(t, func() bool { return len(sb.cluster.Members()) == 1 })

	resp := compressImageOn(t, urlB, im)
	if !resp.Cached {
		t.Error("handed-off entry was not served from the survivor's cache")
	}
	if got := metricValue(t, scrapeURL(t, urlB), "cpackd_peer_hits_total"); got != 0 {
		t.Errorf("cpackd_peer_hits_total on B = %v, want 0 (entry arrived via leave handoff)", got)
	}
}
