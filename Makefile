GO ?= go

.PHONY: build test race vet bench serve clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Run the compression service locally (ctrl-C drains gracefully).
serve:
	$(GO) run ./cmd/cpackd -addr :8321

clean:
	$(GO) clean ./...
