package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"codepack/internal/obs"
)

// HealthSummary is one node's answer to GET /internal/v1/health: the
// operational signals a fleet view needs — queue pressure, cache
// occupancy, membership, and the SLO burn snapshot — small enough to
// pull from every member on each /debug/cluster request.
type HealthSummary struct {
	Self          string         `json:"self"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Queues        map[string]int `json:"queue_depth"`
	Cache         cacheStats     `json:"cache"`

	// Cluster fields are zero for a standalone node.
	RingEpoch      uint64   `json:"ring_epoch,omitempty"`
	Members        []string `json:"members,omitempty"`
	ReplQueue      int      `json:"repl_queue_depth,omitempty"`
	HandoffPending int      `json:"handoff_pending,omitempty"`

	// SLO fields are absent when no -slos file is loaded.
	SLOState   string                `json:"slo_state,omitempty"`
	SLOSource  string                `json:"slo_source,omitempty"`
	Objectives []obs.ObjectiveStatus `json:"slo_objectives,omitempty"`

	Profiler *obs.ProfilerStats `json:"profiler,omitempty"`
}

// healthSummary assembles this node's own summary.
func (s *Server) healthSummary() HealthSummary {
	h := HealthSummary{
		Self:          "standalone",
		UptimeSeconds: time.Since(s.metrics.start).Seconds(),
		Queues:        map[string]int{"light": s.light.depth(), "heavy": s.heavy.depth()},
		Cache:         s.cache.stats(),
	}
	if c := s.cluster; c != nil {
		h.Self = c.Self()
		h.RingEpoch = c.RingEpoch()
		h.Members = c.Members()
		h.ReplQueue = c.ReplQueueDepth()
		h.HandoffPending = c.Stats().HandoffPending
	}
	if s.slo != nil {
		h.SLOState = s.slo.WorstState().String()
		h.SLOSource = s.slo.Source()
		h.Objectives = s.slo.Status()
	}
	if s.profiler != nil {
		ps := s.profiler.Stats()
		h.Profiler = &ps
	}
	return h
}

// handleInternalHealth serves the node's health summary to peers. It
// is registered behind instrumentInternal, so only requests signed
// with the cluster auth key reach it.
func (s *Server) handleInternalHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.healthSummary())
}

// sloDebugResponse is the body of GET /debug/slo.
type sloDebugResponse struct {
	Source     string                `json:"source"`
	State      string                `json:"state"`
	Objectives []obs.ObjectiveStatus `json:"objectives"`
}

// handleDebugSLO serves this node's SLO burn state: every objective
// with its windowed burn rates, remaining error budget, and alert
// state. 404 when no SLO config is loaded, mirroring the trace ring.
func (s *Server) handleDebugSLO(w http.ResponseWriter, r *http.Request) {
	if s.slo == nil {
		s.writeError(w, &httpError{code: http.StatusNotFound, msg: "slo tracking is disabled (start with -slos)"})
		return
	}
	objs := s.slo.Status()
	if objs == nil {
		objs = []obs.ObjectiveStatus{}
	}
	s.writeJSON(w, http.StatusOK, sloDebugResponse{
		Source:     s.slo.Source(),
		State:      s.slo.WorstState().String(),
		Objectives: objs,
	})
}

// clusterNodeReport is one member's slot in the /debug/cluster answer.
type clusterNodeReport struct {
	URL     string         `json:"url"`
	Err     string         `json:"error,omitempty"`
	Summary *HealthSummary `json:"summary,omitempty"`
}

// clusterReport is the body of GET /debug/cluster: the local node's
// summary plus one entry per ring member, fetched live over the signed
// internal health endpoint.
type clusterReport struct {
	Self       string              `json:"self"`
	Total      int                 `json:"total"`
	Reachable  int                 `json:"reachable"`
	WorstState string              `json:"worst_state"`
	Nodes      []clusterNodeReport `json:"nodes"`
}

// stateRank orders alert states for cross-node aggregation; unknown
// or absent states rank as healthy.
func stateRank(state string) int {
	switch state {
	case "page":
		return 2
	case "warn":
		return 1
	}
	return 0
}

// handleDebugCluster merges health summaries from every live ring
// member into one fleet view. The local node answers from memory;
// peers are queried concurrently over the signed internal endpoint,
// and an unreachable member is reported with its error rather than
// failing the whole view. Standalone nodes get a self-only report.
func (s *Server) handleDebugCluster(w http.ResponseWriter, r *http.Request) {
	self := s.healthSummary()
	rep := clusterReport{
		Self:       self.Self,
		WorstState: self.SLOState,
		Nodes:      []clusterNodeReport{{URL: self.Self, Summary: &self}},
	}
	if s.cluster != nil {
		var (
			mu sync.Mutex
			wg sync.WaitGroup
		)
		ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
		defer cancel()
		for _, m := range s.cluster.Members() {
			if m == s.cluster.Self() {
				continue
			}
			wg.Add(1)
			go func(member string) {
				defer wg.Done()
				node := clusterNodeReport{URL: member}
				body, err := s.cluster.FetchHealth(ctx, member)
				if err == nil {
					var sum HealthSummary
					if derr := json.Unmarshal(body, &sum); derr != nil {
						err = derr
					} else {
						node.Summary = &sum
					}
				}
				if err != nil {
					node.Err = err.Error()
				}
				mu.Lock()
				rep.Nodes = append(rep.Nodes, node)
				mu.Unlock()
			}(m)
		}
		wg.Wait()
	}
	sort.Slice(rep.Nodes, func(i, j int) bool { return rep.Nodes[i].URL < rep.Nodes[j].URL })
	worst := stateRank(rep.WorstState)
	for _, n := range rep.Nodes {
		if n.Summary != nil {
			rep.Reachable++
			if r := stateRank(n.Summary.SLOState); r > worst {
				worst = r
				rep.WorstState = n.Summary.SLOState
			}
		}
	}
	rep.Total = len(rep.Nodes)
	s.writeJSON(w, http.StatusOK, rep)
}
