package trace

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// startTrace is a test shorthand: one trace with a root span.
func startTrace(t *Tracer, id, endpoint string) (context.Context, *Span) {
	return t.StartTrace(context.Background(), id, "", endpoint, "handler")
}

// TestSpanTreeShape: spans record name, parentage and attributes, in
// start order, with the root first.
func TestSpanTreeShape(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	ctx, root := startTrace(tr, "req-1", "compress")
	ctx2, a := Start(ctx, "cache-lookup", String("outcome", "miss"))
	a.End()
	_ = ctx2
	fctx, fill := Start(ctx, "fill")
	_, comp := Start(fctx, "compress", Int("bytes", 42))
	comp.End()
	fill.End()
	root.SetAttr("status", 200)
	root.End()

	got := tr.Recent(0, "", 0)
	if len(got) != 1 {
		t.Fatalf("Recent returned %d traces, want 1", len(got))
	}
	spans := got[0].Spans
	names := make([]string, len(spans))
	for i, s := range spans {
		names[i] = s.Name
	}
	want := []string{"handler", "cache-lookup", "fill", "compress"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("span order = %v, want %v", names, want)
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["handler"].Parent != "" {
		t.Errorf("root has parent %q, want none", byName["handler"].Parent)
	}
	if byName["cache-lookup"].Parent != byName["handler"].ID {
		t.Errorf("cache-lookup parented on %q, want root %q", byName["cache-lookup"].Parent, byName["handler"].ID)
	}
	if byName["compress"].Parent != byName["fill"].ID {
		t.Errorf("compress parented on %q, want fill %q", byName["compress"].Parent, byName["fill"].ID)
	}
	if v := byName["cache-lookup"].Attrs["outcome"]; v != "miss" {
		t.Errorf("cache-lookup outcome attr = %v, want miss", v)
	}
	if v := byName["handler"].Attrs["status"]; v != 200 {
		t.Errorf("root status attr = %v, want 200", v)
	}
	tree := got[0].Tree()
	for _, line := range []string{"handler", "  cache-lookup", "  fill", "    compress"} {
		if !strings.Contains(tree, line+" ") {
			t.Errorf("Tree() missing line %q:\n%s", line, tree)
		}
	}
}

// TestNilSafety: without a tracer every call is a no-op — nil spans,
// pass-through contexts, zero-value reads.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, root := tr.StartTrace(context.Background(), "id", "", "e", "handler")
	if root != nil {
		t.Fatal("nil tracer returned a live span")
	}
	ctx2, child := Start(ctx, "anything", String("k", "v"))
	if child != nil {
		t.Fatal("Start without an active span returned a live span")
	}
	if ctx2 != ctx {
		t.Fatal("Start without an active span replaced the context")
	}
	child.SetAttr("k", 1)
	child.End()
	child.End()
	if id := child.SpanID(); id != "" {
		t.Fatalf("nil span ID = %q, want empty", id)
	}
	if got := tr.Recent(0, "", 0); got != nil {
		t.Fatalf("nil tracer Recent = %v, want nil", got)
	}
	if n := tr.Total(); n != 0 {
		t.Fatalf("nil tracer Total = %d, want 0", n)
	}
}

// TestRingEviction: the ring holds at most Capacity traces, newest
// first, and Total keeps counting past evictions.
func TestRingEviction(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 4})
	for i := 0; i < 10; i++ {
		_, root := startTrace(tr, fmt.Sprintf("req-%d", i), "compress")
		root.End()
	}
	got := tr.Recent(0, "", 0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(got))
	}
	for i, tc := range got {
		if want := fmt.Sprintf("req-%d", 9-i); tc.TraceID != want {
			t.Errorf("Recent[%d] = %s, want %s (newest first)", i, tc.TraceID, want)
		}
	}
	if tr.Total() != 10 {
		t.Errorf("Total = %d, want 10", tr.Total())
	}
}

// TestRecentFilters: min-duration and endpoint filters, and the limit.
func TestRecentFilters(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	emit := func(id, endpoint string, dur time.Duration) {
		_, root := startTrace(tr, id, endpoint)
		// Backdate the root so DurationMS is deterministic without
		// sleeping: End computes time.Since(start).
		root.start = root.start.Add(-dur)
		root.End()
	}
	emit("fast", "compress", time.Millisecond)
	emit("slow", "compress", 100*time.Millisecond)
	emit("sim", "simulate", 200*time.Millisecond)

	if got := tr.Recent(50*time.Millisecond, "", 0); len(got) != 2 {
		t.Fatalf("min_ms filter kept %d traces, want 2", len(got))
	} else if got[0].TraceID != "sim" || got[1].TraceID != "slow" {
		t.Errorf("filtered order = %s,%s want sim,slow", got[0].TraceID, got[1].TraceID)
	}
	if got := tr.Recent(0, "compress", 0); len(got) != 2 {
		t.Errorf("endpoint filter kept %d traces, want 2", len(got))
	}
	if got := tr.Recent(0, "", 1); len(got) != 1 || got[0].TraceID != "sim" {
		t.Errorf("limit=1 returned %v", got)
	}
}

// TestConcurrentEmitAndRead hammers the tracer from emitting and
// reading goroutines at a capacity small enough to force constant
// eviction; the race detector is the assertion.
func TestConcurrentEmitAndRead(t *testing.T) {
	tr := NewTracer(TracerConfig{
		Capacity:  8,
		OnSpanEnd: func(string, time.Duration, string) {},
	})
	var emitters, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		emitters.Add(1)
		go func(g int) {
			defer emitters.Done()
			for i := 0; i < 200; i++ {
				ctx, root := startTrace(tr, fmt.Sprintf("g%d-%d", g, i), "compress")
				_, child := Start(ctx, "cache-lookup")
				child.SetAttr("i", i)
				child.End()
				root.End()
			}
		}(g)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, tc := range tr.Recent(0, "", 0) {
				_ = tc.Tree()
			}
		}
	}()
	emitters.Wait()
	close(stop)
	readers.Wait()

	if n := tr.Total(); n != 800 {
		t.Errorf("Total = %d, want 800", n)
	}
	if got := tr.Recent(0, "", 0); len(got) != 8 {
		t.Errorf("ring holds %d, want 8", len(got))
	}
	if got := tr.Evicted(); got != 792 {
		t.Errorf("Evicted = %d, want 792", got)
	}
	if got := tr.Capacity(); got != 8 {
		t.Errorf("Capacity = %d, want 8", got)
	}
}

// TestHooksFire: OnSpanEnd sees every span, OnTraceDone every completed
// trace; a child ending after the root still feeds OnSpanEnd but never
// mutates the sealed trace.
func TestHooksFire(t *testing.T) {
	var mu sync.Mutex
	spanNames := map[string]int{}
	spanTraceIDs := map[string]bool{}
	var traces []Trace
	tr := NewTracer(TracerConfig{
		OnSpanEnd: func(name string, d time.Duration, traceID string) {
			mu.Lock()
			spanNames[name]++
			spanTraceIDs[traceID] = true
			mu.Unlock()
		},
		OnTraceDone: func(tc Trace) {
			mu.Lock()
			traces = append(traces, tc)
			mu.Unlock()
		},
	})
	ctx, root := startTrace(tr, "req", "compress")
	_, straggler := Start(ctx, "late")
	_, child := Start(ctx, "cache-lookup")
	child.End()
	root.End()
	straggler.End() // after the root: dropped from the trace, still counted

	mu.Lock()
	defer mu.Unlock()
	if spanNames["handler"] != 1 || spanNames["cache-lookup"] != 1 || spanNames["late"] != 1 {
		t.Errorf("OnSpanEnd counts = %v", spanNames)
	}
	if len(spanTraceIDs) != 1 || !spanTraceIDs["req"] {
		t.Errorf("OnSpanEnd trace IDs = %v, want {req}", spanTraceIDs)
	}
	if len(traces) != 1 {
		t.Fatalf("OnTraceDone fired %d times, want 1", len(traces))
	}
	for _, s := range traces[0].Spans {
		if s.Name == "late" {
			t.Error("straggler span landed in the sealed trace")
		}
	}
}
