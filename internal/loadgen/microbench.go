package loadgen

import (
	"bufio"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// MicroBench is one `go test -bench` result line, normalized: the
// -<GOMAXPROCS> suffix is stripped from the name so trajectories compare
// across machines.
type MicroBench struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

var benchSuffix = regexp.MustCompile(`-\d+$`)

// ParseGoBench extracts benchmark result lines from `go test -bench`
// output (as produced with -benchmem). Non-result lines are ignored, so
// the full test output can be piped in unfiltered.
func ParseGoBench(r io.Reader) ([]MicroBench, error) {
	var out []MicroBench
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 3 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		mb := MicroBench{
			Name:       benchSuffix.ReplaceAllString(f[0], ""),
			Iterations: iters,
		}
		// The remainder is value-unit pairs: "123.4 ns/op", "56 MB/s",
		// "789 B/op", "12 allocs/op", plus custom metrics we skip.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				mb.NsPerOp = v
			case "MB/s":
				mb.MBPerSec = v
			case "B/op":
				mb.BytesPerOp = v
			case "allocs/op":
				mb.AllocsPerOp = v
			}
		}
		if mb.NsPerOp > 0 {
			out = append(out, mb)
		}
	}
	return out, sc.Err()
}
