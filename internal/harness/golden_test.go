package harness

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden regression tests: the rendered experiment tables are pinned
// byte-for-byte under testdata/, so any drift in the simulator, the
// codec or the workload generator fails `go test ./...` immediately
// instead of surfacing as a silent shift in the paper reproduction.
// The shape tests in harness_test.go assert the physics stays in the
// paper's bands; these assert the numbers stay put at all.
//
// Regenerate after an intentional change with:
//
//	go test ./internal/harness -run TestGolden -update-golden
//
// and review the diff like any other code change.
var updateGolden = flag.Bool("update-golden", false, "rewrite the harness golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update-golden): %v", path, err)
	}
	if got == string(want) {
		return
	}
	// Report the first diverging line so drift is diagnosable from CI logs.
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		g, w := "", ""
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("%s drifted at line %d:\n  got:  %q\n  want: %q\n(rerun with -update-golden if intentional)",
				path, i+1, g, w)
		}
	}
	t.Fatalf("%s drifted (same lines, different bytes?)", path)
}

// TestGoldenTable2 pins the static architecture table.
func TestGoldenTable2(t *testing.T) {
	checkGolden(t, "table2", Table2().String())
}

// TestGoldenTable3 pins the per-benchmark compression ratios — the
// codec's headline numbers. Cheap (no simulation), so it always runs.
func TestGoldenTable3(t *testing.T) {
	tb, err := suite.Table3()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table3", tb.String())
}

// TestGoldenTable4 pins the compressed-region composition, catching
// encoding drift that happens to keep the total ratio stable.
func TestGoldenTable4(t *testing.T) {
	tb, err := suite.Table4()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table4", tb.String())
}

// TestGoldenFigure2 pins the paper's worked decompression timeline.
func TestGoldenFigure2(t *testing.T) {
	tb, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure2", tb.String())
}

// TestGoldenTable5 pins the full IPC matrix — the simulator's headline
// output. It reruns 54 simulations, so -short skips it for CI speed.
func TestGoldenTable5(t *testing.T) {
	if testing.Short() {
		t.Skip("full IPC matrix")
	}
	tb, err := suite.Table5()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table5", tb.String())
}

// TestGoldenDeterminism guards the premise golden pinning rests on: the
// whole pipeline (generation, compression, rendering) must be
// reproducible within a process. A fresh suite must render Table 3
// identically to the shared one.
func TestGoldenDeterminism(t *testing.T) {
	a, err := suite.Table3()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSuite(suite.MaxInstr).Table3()
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("Table3 not deterministic across suites:\n%s\nvs\n%s", a, b)
	}
	if fmt.Sprint(a.Values) != fmt.Sprint(b.Values) {
		t.Fatal("Table3 raw values differ across suites")
	}
}
