package server

import (
	"math"
	rm "runtime/metrics"
)

// runtimeSampleNames are the runtime/metrics samples exported on
// /metrics — the runtime-pressure signals an SLO breach is most often
// correlated with: GC pause tail, scheduler latency tail, goroutine
// count and live heap. Samples the running toolchain does not publish
// render as absent families, not errors.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/gc/heap/live:bytes",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// float64HistP99 extracts the 99th percentile upper bound from a
// runtime/metrics histogram: the bucket boundary below which at least
// 99% of observations fall.
func float64HistP99(h *rm.Float64Histogram) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	thresh := uint64(math.Ceil(float64(total) * 0.99))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= thresh {
			// Buckets has len(Counts)+1 boundaries; use the bucket's upper
			// bound, falling back to its lower one when the tail bucket is
			// unbounded.
			upper := h.Buckets[i+1]
			if math.IsInf(upper, 1) {
				upper = h.Buckets[i]
			}
			if math.IsInf(upper, -1) {
				return 0
			}
			return upper
		}
	}
	return 0
}

// writeRuntimeMetrics renders the Go runtime health gauges.
func writeRuntimeMetrics(x *expoWriter) {
	samples := make([]rm.Sample, len(runtimeSampleNames))
	for i, n := range runtimeSampleNames {
		samples[i].Name = n
	}
	rm.Read(samples)
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == rm.KindUint64 {
				x.family("cpackd_go_goroutines", "gauge", "Live goroutines.")
				x.gaugeInt("cpackd_go_goroutines", "", int64(s.Value.Uint64()))
			}
		case "/gc/heap/live:bytes":
			if s.Value.Kind() == rm.KindUint64 {
				x.family("cpackd_go_heap_live_bytes", "gauge", "Heap bytes live after the last GC mark.")
				x.gaugeInt("cpackd_go_heap_live_bytes", "", int64(s.Value.Uint64()))
			}
		case "/gc/pauses:seconds":
			if s.Value.Kind() == rm.KindFloat64Histogram {
				x.family("cpackd_go_gc_pause_p99_seconds", "gauge", "99th percentile stop-the-world GC pause.")
				x.gauge("cpackd_go_gc_pause_p99_seconds", "", float64HistP99(s.Value.Float64Histogram()))
			}
		case "/sched/latencies:seconds":
			if s.Value.Kind() == rm.KindFloat64Histogram {
				x.family("cpackd_go_sched_latency_p99_seconds", "gauge", "99th percentile time goroutines spent runnable before running.")
				x.gauge("cpackd_go_sched_latency_p99_seconds", "", float64HistP99(s.Value.Float64Histogram()))
			}
		}
	}
}
