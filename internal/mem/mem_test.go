package mem

import (
	"testing"
	"testing/quick"
)

func newBus(t *testing.T, cfg Config) *Bus {
	t.Helper()
	b, err := NewBus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBaselineConfig(t *testing.T) {
	cfg := Baseline()
	if cfg.WidthBytes != 8 || cfg.FirstLatency != 10 || cfg.BeatLatency != 2 {
		t.Fatalf("baseline = %+v, want the paper's 64-bit/10/2", cfg)
	}
	if s := cfg.String(); s != "64-bit bus, 10 cycle latency, 2 cycle rate" {
		t.Errorf("String() = %q", s)
	}
	for _, bad := range []Config{
		{WidthBytes: 0, FirstLatency: 10, BeatLatency: 2},
		{WidthBytes: 8, FirstLatency: 0, BeatLatency: 2},
		{WidthBytes: 8, FirstLatency: 10, BeatLatency: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

// TestPaperBeatTiming reproduces the paper's Figure 2-a: a 32-byte line on
// the 64-bit bus arrives in 4 beats at t=10, 12, 14, 16.
func TestPaperBeatTiming(t *testing.T) {
	b := newBus(t, Baseline())
	p := b.Request(0, 0x1000, 32)
	if p.Beats != 4 {
		t.Fatalf("beats = %d, want 4", p.Beats)
	}
	for i, want := range []uint64{10, 12, 14, 16} {
		if got := p.BeatTime(i); got != want {
			t.Errorf("beat %d at %d, want %d", i, got, want)
		}
	}
	if p.Done() != 16 {
		t.Errorf("done = %d", p.Done())
	}
}

func TestAlignmentSlackAddsBeats(t *testing.T) {
	b := newBus(t, Baseline())
	// 9 bytes starting 7 bytes into a bus word: spans 3 beats (1+9=16..
	// bytes 7..15 -> words 0 and 1 -> wait: 7+9=16 exactly 2 beats).
	p := b.Request(0, 7, 9)
	if p.Beats != 2 {
		t.Fatalf("beats = %d, want 2", p.Beats)
	}
	p2 := b.Request(100, 7, 10) // 7+10=17 -> 3 beats
	if p2.Beats != 3 {
		t.Fatalf("beats = %d, want 3", p2.Beats)
	}
}

func TestBusOccupancySerializes(t *testing.T) {
	b := newBus(t, Baseline())
	p1 := b.Request(0, 0, 32)
	p2 := b.Request(5, 0x100, 32) // issued while busy
	if p2.Start != p1.Done() {
		t.Fatalf("second burst starts at %d, want %d", p2.Start, p1.Done())
	}
	// After the bus drains, a late request starts immediately.
	p3 := b.Request(1000, 0x200, 8)
	if p3.Start != 1000 {
		t.Fatalf("idle bus delayed request to %d", p3.Start)
	}
}

func TestBytesBy(t *testing.T) {
	b := newBus(t, Baseline())
	p := b.Request(0, 0x1000, 32) // aligned, beats at 10,12,14,16
	cases := []struct {
		t    uint64
		want int
	}{
		{9, 0}, {10, 8}, {11, 8}, {12, 16}, {16, 32}, {100, 32},
	}
	for _, c := range cases {
		if got := b.BytesBy(p, 0x1000, c.t); got != c.want {
			t.Errorf("BytesBy(t=%d) = %d, want %d", c.t, got, c.want)
		}
	}
	// With slack, the first beat delivers fewer useful bytes.
	p2 := b.Request(100, 0x1003, 8)
	if got := b.BytesBy(p2, 0x1003, p2.First); got != 5 {
		t.Errorf("slack first beat = %d bytes, want 5", got)
	}
}

func TestNarrowBus(t *testing.T) {
	b := newBus(t, Config{WidthBytes: 2, FirstLatency: 10, BeatLatency: 2})
	p := b.Request(0, 0, 32)
	if p.Beats != 16 {
		t.Fatalf("16-bit bus: beats = %d, want 16", p.Beats)
	}
	if p.Done() != 10+15*2 {
		t.Fatalf("done = %d, want 40", p.Done())
	}
}

func TestStatsAndReset(t *testing.T) {
	b := newBus(t, Baseline())
	b.Request(0, 0, 32)
	b.Request(0, 64, 8)
	if s := b.Stats(); s.Bursts != 2 || s.Beats != 5 {
		t.Fatalf("stats %+v, want 2 bursts 5 beats", s)
	}
	b.Reset()
	if s := b.Stats(); s.Bursts != 0 {
		t.Fatal("stats survived reset")
	}
	if p := b.Request(0, 0, 8); p.Start != 0 {
		t.Fatal("occupancy survived reset")
	}
}

// Property: beat count always covers the requested bytes, and BytesBy at
// Done() returns at least n.
func TestBurstCoversRequest(t *testing.T) {
	f := func(addr uint32, n uint16, w uint8) bool {
		width := int(w)%16 + 1
		bytes := int(n)%256 + 1
		b, err := NewBus(Config{WidthBytes: width, FirstLatency: 5, BeatLatency: 1})
		if err != nil {
			return false
		}
		p := b.Request(0, addr, bytes)
		return b.BytesBy(p, addr, p.Done()) >= bytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: BytesBy is monotone in time.
func TestBytesByMonotone(t *testing.T) {
	b := newBus(t, Baseline())
	p := b.Request(0, 0x1003, 45)
	prev := -1
	for ti := uint64(0); ti < 60; ti++ {
		got := b.BytesBy(p, 0x1003, ti)
		if got < prev {
			t.Fatalf("BytesBy decreased at t=%d", ti)
		}
		prev = got
	}
}
