// Package ccrp implements the Compressed Code RISC Processor scheme of
// Wolfe and Chanin (paper section 2.2): instruction-cache lines are
// Huffman-encoded byte by byte at compile time and decompressed on refill;
// a Line Address Table (LAT) maps native line addresses to compressed
// locations. It serves as a related-work baseline for comparing against
// CodePack: byte-granularity Huffman achieves a worse ratio (the paper
// cites 73% on MIPS) and its bit-serial decode is history-free but slow.
package ccrp

import (
	"container/heap"
	"fmt"
	"sort"

	"codepack/internal/isa"
)

// LineBytes is the compression granularity: one 32-byte cache line.
const LineBytes = 32

// Compressed is a CCRP-compressed text section.
type Compressed struct {
	TextBase uint32
	NumInstr int

	// Code lengths per byte symbol (canonical Huffman).
	Lengths [256]uint8
	// LAT maps line index to the byte offset of its compressed form.
	LAT    []uint32
	Region []byte

	codes  [256]uint32 // canonical codes by symbol
	maxLen uint8
}

// Compress encodes text with a program-wide byte Huffman code, line by line.
func Compress(textBase uint32, text []isa.Word) (*Compressed, error) {
	if len(text) == 0 {
		return nil, fmt.Errorf("ccrp: empty text")
	}
	// Pad to whole lines.
	words := append([]isa.Word(nil), text...)
	for len(words)%(LineBytes/4) != 0 {
		words = append(words, 0)
	}
	bytes := make([]byte, 0, len(words)*4)
	for _, w := range words {
		bytes = append(bytes, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
	}

	var freq [256]int
	for _, b := range bytes {
		freq[b]++
	}
	c := &Compressed{TextBase: textBase, NumInstr: len(text)}
	if err := c.buildCode(freq); err != nil {
		return nil, err
	}

	nLines := len(bytes) / LineBytes
	c.LAT = make([]uint32, nLines)
	for l := 0; l < nLines; l++ {
		c.LAT[l] = uint32(len(c.Region))
		c.Region = append(c.Region, c.encodeLine(bytes[l*LineBytes:(l+1)*LineBytes])...)
	}
	return c, nil
}

// buildCode constructs a canonical Huffman code from byte frequencies,
// capping code length at 16 bits (rebalancing if necessary).
func (c *Compressed) buildCode(freq [256]int) error {
	var nodes []huffNode
	var live []int
	for s, f := range freq {
		if f > 0 {
			nodes = append(nodes, huffNode{weight: f, sym: s, left: -1, right: -1})
			live = append(live, len(nodes)-1)
		}
	}
	if len(live) == 0 {
		return fmt.Errorf("ccrp: no symbols")
	}
	if len(live) == 1 {
		c.Lengths[nodes[live[0]].sym] = 1
	} else {
		h := &nodeHeap{nodes: &nodes, idx: live}
		heap.Init(h)
		for h.Len() > 1 {
			a := heap.Pop(h).(int)
			b := heap.Pop(h).(int)
			nodes = append(nodes, huffNode{
				weight: nodes[a].weight + nodes[b].weight,
				sym:    -1, left: a, right: b,
			})
			heap.Push(h, len(nodes)-1)
		}
		root := h.idx[0]
		var walk func(n int, depth uint8)
		walk = func(n int, depth uint8) {
			if nodes[n].sym >= 0 {
				if depth == 0 {
					depth = 1
				}
				c.Lengths[nodes[n].sym] = depth
				return
			}
			walk(nodes[n].left, depth+1)
			walk(nodes[n].right, depth+1)
		}
		walk(root, 0)
	}
	// Cap at 16 bits by flattening overlong codes (rare; keeps the
	// decoder table small). Kraft repair: push overflow to length 16.
	for {
		var kraft float64
		over := false
		for s := 0; s < 256; s++ {
			if c.Lengths[s] > 16 {
				c.Lengths[s] = 16
				over = true
			}
			if c.Lengths[s] > 0 {
				kraft += 1 / float64(uint32(1)<<c.Lengths[s])
			}
		}
		if kraft <= 1.0 {
			break
		}
		if !over {
			// Lengthen the shortest longest code.
			best := -1
			for s := 0; s < 256; s++ {
				if l := c.Lengths[s]; l > 0 && l < 16 && (best < 0 || l > c.Lengths[best]) {
					best = s
				}
			}
			if best < 0 {
				return fmt.Errorf("ccrp: cannot satisfy Kraft inequality")
			}
			c.Lengths[best]++
		}
	}
	c.assignCanonical()
	return nil
}

// assignCanonical derives canonical codes from the length table.
func (c *Compressed) assignCanonical() {
	type sl struct {
		sym int
		l   uint8
	}
	var syms []sl
	for s := 0; s < 256; s++ {
		if c.Lengths[s] > 0 {
			syms = append(syms, sl{s, c.Lengths[s]})
			if c.Lengths[s] > c.maxLen {
				c.maxLen = c.Lengths[s]
			}
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].l != syms[j].l {
			return syms[i].l < syms[j].l
		}
		return syms[i].sym < syms[j].sym
	})
	code := uint32(0)
	prev := uint8(0)
	for _, e := range syms {
		code <<= e.l - prev
		c.codes[e.sym] = code
		prev = e.l
		code++
	}
}

func (c *Compressed) encodeLine(line []byte) []byte {
	var out []byte
	var acc uint64
	var nbits uint
	for _, b := range line {
		l := uint(c.Lengths[b])
		acc = acc<<l | uint64(c.codes[b])
		nbits += l
		for nbits >= 8 {
			out = append(out, byte(acc>>(nbits-8)))
			nbits -= 8
		}
	}
	if nbits > 0 {
		out = append(out, byte(acc<<(8-nbits)))
	}
	return out
}

// DecompressLine decodes the line containing addr back to native bytes.
func (c *Compressed) DecompressLine(addr uint32) ([]byte, error) {
	l := int(addr-c.TextBase) / LineBytes
	if addr < c.TextBase || l >= len(c.LAT) {
		return nil, fmt.Errorf("ccrp: address %#x out of range", addr)
	}
	start := int(c.LAT[l])
	end := len(c.Region)
	if l+1 < len(c.LAT) {
		end = int(c.LAT[l+1])
	}
	stream := c.Region[start:end]
	out := make([]byte, 0, LineBytes)
	var code uint32
	var codeLen uint8
	bit := 0
	for len(out) < LineBytes {
		if bit >= len(stream)*8 {
			return nil, fmt.Errorf("ccrp: truncated line %d", l)
		}
		code = code<<1 | uint32(stream[bit/8]>>(7-bit%8)&1)
		codeLen++
		bit++
		if sym, ok := c.lookup(code, codeLen); ok {
			out = append(out, sym)
			code, codeLen = 0, 0
		}
		if codeLen > c.maxLen {
			return nil, fmt.Errorf("ccrp: invalid codeword in line %d", l)
		}
	}
	return out, nil
}

func (c *Compressed) lookup(code uint32, l uint8) (byte, bool) {
	for s := 0; s < 256; s++ {
		if c.Lengths[s] == l && c.codes[s] == code {
			return byte(s), true
		}
	}
	return 0, false
}

// Decompress reconstructs the entire text section.
func (c *Compressed) Decompress() ([]isa.Word, error) {
	var out []isa.Word
	for l := 0; l < len(c.LAT); l++ {
		line, err := c.DecompressLine(c.TextBase + uint32(l*LineBytes))
		if err != nil {
			return nil, err
		}
		for i := 0; i < LineBytes; i += 4 {
			out = append(out, uint32(line[i])<<24|uint32(line[i+1])<<16|
				uint32(line[i+2])<<8|uint32(line[i+3]))
		}
	}
	return out[:c.NumInstr], nil
}

// Ratio returns compressed size (region + LAT + code-length table) over
// the original text size.
func (c *Compressed) Ratio() float64 {
	compressed := len(c.Region) + 4*len(c.LAT) + 256
	return float64(compressed) / float64(c.NumInstr*4)
}

// huffNode is one Huffman-tree node; sym is -1 for internal nodes.
type huffNode struct {
	weight      int
	sym         int
	left, right int
}

// nodeHeap is a min-heap over node indices by weight.
type nodeHeap struct {
	nodes *[]huffNode
	idx   []int
}

func (h *nodeHeap) Len() int { return len(h.idx) }
func (h *nodeHeap) Less(i, j int) bool {
	return (*h.nodes)[h.idx[i]].weight < (*h.nodes)[h.idx[j]].weight
}
func (h *nodeHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *nodeHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int)) }
func (h *nodeHeap) Pop() interface{} {
	x := h.idx[len(h.idx)-1]
	h.idx = h.idx[:len(h.idx)-1]
	return x
}
