package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// openTestStore opens a store in dir and registers cleanup.
func openTestStore(t *testing.T, dir string) (*diskStore, []storedEntry) {
	t.Helper()
	st, entries, err := openStore(dir, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.close() })
	return st, entries
}

func entryKeys(entries []storedEntry) []string {
	keys := make([]string, len(entries))
	for i, e := range entries {
		keys[i] = e.key
	}
	return keys
}

func TestStoreAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, entries := openTestStore(t, dir)
	if len(entries) != 0 {
		t.Fatalf("fresh store restored %d entries", len(entries))
	}
	payloads := map[string][]byte{
		"k1": []byte("payload one"),
		"k2": bytes.Repeat([]byte{0xAB}, 1024),
		"k3": {}, // empty payloads are legal
	}
	for _, k := range []string{"k1", "k2", "k3"} {
		if err := st.append(k, payloads[k]); err != nil {
			t.Fatal(err)
		}
	}
	// Re-append k1: the later record must win and refresh replay order.
	if err := st.append("k1", payloads["k1"]); err != nil {
		t.Fatal(err)
	}
	if err := st.close(); err != nil {
		t.Fatal(err)
	}

	st2, entries2 := openTestStore(t, dir)
	got := entryKeys(entries2)
	want := []string{"k2", "k3", "k1"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("replay order %v, want %v", got, want)
	}
	for _, e := range entries2 {
		if !bytes.Equal(e.payload, payloads[e.key]) {
			t.Errorf("%s payload corrupted", e.key)
		}
		if sha256.Sum256(e.payload) != e.sum {
			t.Errorf("%s sum does not verify", e.key)
		}
	}
	ss := st2.statsSnapshot()
	if ss.RestoredEntries != 3 || ss.RecordsSkipped != 0 || ss.TailTruncations != 0 {
		t.Errorf("stats %+v, want 3 restored, nothing skipped", ss)
	}
	if ss.BytesReplayed == 0 {
		t.Error("bytes replayed not counted")
	}
}

// TestStoreTornTailTruncated simulates a SIGKILL mid-append: a partial
// record at the log tail must be dropped and physically truncated so the
// next append starts a clean frame.
func TestStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir)
	if err := st.append("good1", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := st.append("good2", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := st.close(); err != nil {
		t.Fatal(err)
	}

	logPath := filepath.Join(dir, logFileName)
	full := encodeRecord("torn", bytes.Repeat([]byte{7}, 400))
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sizeBefore := fileSize(t, logPath)

	st2, entries := openTestStore(t, dir)
	if got := entryKeys(entries); len(got) != 2 || got[0] != "good1" || got[1] != "good2" {
		t.Fatalf("recovered %v, want [good1 good2]", got)
	}
	ss := st2.statsSnapshot()
	if ss.TailTruncations != 1 {
		t.Errorf("tail truncations = %d, want 1", ss.TailTruncations)
	}
	if after := fileSize(t, logPath); after >= sizeBefore {
		t.Errorf("log not truncated: %d -> %d bytes", sizeBefore, after)
	}

	// The store must be appendable at the truncated offset and the new
	// record must survive another reopen.
	if err := st2.append("good3", []byte("three")); err != nil {
		t.Fatal(err)
	}
	if err := st2.close(); err != nil {
		t.Fatal(err)
	}
	_, entries3 := openTestStore(t, dir)
	if got := entryKeys(entries3); len(got) != 3 || got[2] != "good3" {
		t.Fatalf("after torn-tail recovery + append, recovered %v", got)
	}
}

// TestStoreCorruptFrameDropsTail: a bit flip inside a record body breaks
// its CRC; that record and everything after it are dropped, earlier
// records survive.
func TestStoreCorruptFrameDropsTail(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir)
	for _, k := range []string{"a", "b", "c"} {
		if err := st.append(k, bytes.Repeat([]byte(k), 64)); err != nil {
			t.Fatal(err)
		}
	}
	recLen := int64(len(encodeRecord("a", bytes.Repeat([]byte("a"), 64))))
	if err := st.close(); err != nil {
		t.Fatal(err)
	}

	logPath := filepath.Join(dir, logFileName)
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the middle record ("b").
	raw[int64(len(storeMagic))+recLen+recordHeader+recordFixed+3] ^= 0xFF
	if err := os.WriteFile(logPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, entries := openTestStore(t, dir)
	if got := entryKeys(entries); len(got) != 1 || got[0] != "a" {
		t.Fatalf("recovered %v, want [a]", got)
	}
	if ss := st2.statsSnapshot(); ss.TailTruncations != 1 {
		t.Errorf("stats %+v, want one tail truncation", ss)
	}
}

// TestStoreBadSumSkipsRecord: a record whose CRC holds but whose payload
// fails its SHA-256 (a deliberately consistent corruption) is skipped
// individually; later records still load.
func TestStoreBadSumSkipsRecord(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir)
	if err := st.append("a", []byte("aaa")); err != nil {
		t.Fatal(err)
	}
	if err := st.close(); err != nil {
		t.Fatal(err)
	}

	// Hand-build a record with a wrong sum but a valid CRC, then a good one.
	bad := encodeRecord("evil", []byte("payload"))
	body := bad[recordHeader:]
	body[2] ^= 0xFF // corrupt the stored sum
	binary.LittleEndian.PutUint32(bad, crc32.ChecksumIEEE(body))
	good := encodeRecord("z", []byte("zzz"))
	logPath := filepath.Join(dir, logFileName)
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(bad)
	f.Write(good)
	f.Close()

	st2, entries := openTestStore(t, dir)
	if got := entryKeys(entries); len(got) != 2 || got[0] != "a" || got[1] != "z" {
		t.Fatalf("recovered %v, want [a z]", got)
	}
	if ss := st2.statsSnapshot(); ss.RecordsSkipped != 1 {
		t.Errorf("records skipped = %d, want 1", ss.RecordsSkipped)
	}
}

func TestStoreCompactReplacesSnapshotAndResetsLog(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir)
	for _, k := range []string{"a", "b", "c", "d"} {
		if err := st.append(k, bytes.Repeat([]byte(k), 256)); err != nil {
			t.Fatal(err)
		}
	}
	// Compact down to two survivors, as after LRU eviction.
	live := []storedEntry{
		mkEntry("c", bytes.Repeat([]byte("c"), 256)),
		mkEntry("d", bytes.Repeat([]byte("d"), 256)),
	}
	if err := st.compact(func() []storedEntry { return live }); err != nil {
		t.Fatal(err)
	}
	if got := fileSize(t, filepath.Join(dir, logFileName)); got != int64(len(storeMagic)) {
		t.Errorf("log size after compact = %d, want %d (header only)", got, len(storeMagic))
	}
	if _, err := os.Stat(filepath.Join(dir, snapFileName+".tmp")); !os.IsNotExist(err) {
		t.Error("snapshot temp file left behind")
	}
	// Appends after compaction land in the fresh log.
	if err := st.append("e", []byte("eee")); err != nil {
		t.Fatal(err)
	}
	ss := st.statsSnapshot()
	if ss.Compactions != 1 || ss.SnapshotBytes == 0 {
		t.Errorf("stats %+v, want one compaction with a non-empty snapshot", ss)
	}
	if err := st.close(); err != nil {
		t.Fatal(err)
	}

	_, entries := openTestStore(t, dir)
	if got := entryKeys(entries); len(got) != 3 || got[0] != "c" || got[1] != "d" || got[2] != "e" {
		t.Fatalf("recovered %v, want [c d e]", got)
	}
}

func TestStoreNeedCompactPolicy(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTestStore(t, dir)
	st.compactMinBytes = 512
	st.compactRatio = 2

	if st.needCompact() {
		t.Error("fresh store wants compaction")
	}
	if err := st.append("k", bytes.Repeat([]byte{1}, 600)); err != nil {
		t.Fatal(err)
	}
	if !st.needCompact() {
		t.Error("log above min bytes with no snapshot should compact")
	}
	if err := st.compact(func() []storedEntry {
		return []storedEntry{mkEntry("k", bytes.Repeat([]byte{1}, 600))}
	}); err != nil {
		t.Fatal(err)
	}
	if st.needCompact() {
		t.Error("just-compacted store wants compaction")
	}
	// The log must now exceed ratio * snapshot before compacting again.
	if err := st.append("k2", bytes.Repeat([]byte{2}, 700)); err != nil {
		t.Fatal(err)
	}
	if st.needCompact() {
		t.Error("log smaller than ratio*snapshot should not compact")
	}
}

// TestStoreBadMagicIgnored: a log from some other program (or a zeroed
// file) is ignored and rewritten, not trusted.
func TestStoreBadMagicIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logFileName), []byte("not a cache log at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, entries := openTestStore(t, dir)
	if len(entries) != 0 {
		t.Fatalf("recovered %d entries from garbage", len(entries))
	}
	if err := st.append("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := st.close(); err != nil {
		t.Fatal(err)
	}
	_, entries2 := openTestStore(t, dir)
	if len(entries2) != 1 || entries2[0].key != "k" {
		t.Fatalf("recovered %v after garbage reset", entryKeys(entries2))
	}
}

func mkEntry(key string, payload []byte) storedEntry {
	return storedEntry{key: key, payload: payload, sum: sha256.Sum256(payload)}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
