package harness

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result, one per paper table/figure.
type Table struct {
	ID      string // e.g. "table5"
	Title   string
	Columns []string
	Rows    [][]string
	// Values carries the raw numbers keyed "row/col" for tests.
	Values map[string]float64
}

func newTable(id, title string, cols ...string) *Table {
	return &Table{ID: id, Title: title, Columns: cols, Values: make(map[string]float64)}
}

func (t *Table) addRow(cells ...string) { t.Rows = append(t.Rows, cells) }

func (t *Table) set(row, col string, v float64) {
	t.Values[row+"/"+col] = v
}

// Value returns the raw number recorded for (row, col).
func (t *Table) Value(row, col string) (float64, bool) {
	v, ok := t.Values[row+"/"+col]
	return v, ok
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	row := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" " + c + " |")
		}
		b.WriteByte('\n')
	}
	row(t.Columns)
	b.WriteString("|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	row(t.Columns)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}
