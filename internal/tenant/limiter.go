package tenant

import (
	"math"
	"sync"
	"time"
)

// QuotaWindow is the rolling window byte quotas are accounted over.
const QuotaWindow = 60 * time.Second

// limiterState is the mutable per-tenant side of rate limiting: the
// token bucket level and the rolling byte-quota ring. It is keyed by
// tenant ID in the Registry and deliberately survives config reloads —
// new limits apply to accumulated debt rather than wiping it, so a
// SIGHUP can't be used to dodge a quota.
type limiterState struct {
	mu sync.Mutex

	// Token bucket: tokens refill at the tenant's RateRPS up to Burst.
	tokens   float64
	lastFill time.Time

	// Byte quota: ring of per-second buckets covering QuotaWindow.
	// buckets[i] counts bytes for unix second base+i (mod len).
	buckets [60]int64
	seconds [60]int64 // which unix second each bucket currently holds
}

// Decision is the outcome of an admission check.
type Decision struct {
	OK bool
	// Reason is "rate" or "quota" when !OK — the metric label for the
	// denial.
	Reason string
	// RetryAfter is how long this tenant must wait before the denied
	// dimension would admit one more request. It is derived from the
	// tenant's own debt, never from global server state.
	RetryAfter time.Duration
}

// admit runs the token-bucket check against limits (from the current
// snapshot) at time now. It consumes one token on success.
func (ls *limiterState) admit(limits *Tenant, now time.Time) Decision {
	if limits.RateRPS <= 0 {
		return Decision{OK: true}
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.lastFill.IsZero() {
		ls.tokens = limits.Burst
	} else if dt := now.Sub(ls.lastFill).Seconds(); dt > 0 {
		ls.tokens = math.Min(limits.Burst, ls.tokens+dt*limits.RateRPS)
	}
	ls.lastFill = now
	if ls.tokens >= 1 {
		ls.tokens--
		return Decision{OK: true}
	}
	// Time until the bucket refills to one token — this tenant's own
	// debt, independent of anyone else's load.
	need := (1 - ls.tokens) / limits.RateRPS
	return Decision{Reason: "rate", RetryAfter: secsDuration(need)}
}

// chargeBytes records n bytes against the rolling quota at time now.
// Accounting is post-hoc (response sizes aren't known at admission), so
// a tenant can overshoot by one in-flight request; the next admission
// check sees the debt.
func (ls *limiterState) chargeBytes(n int64, now time.Time) {
	if n <= 0 {
		return
	}
	sec := now.Unix()
	i := int(sec % int64(len(ls.buckets)))
	ls.mu.Lock()
	if ls.seconds[i] != sec {
		ls.seconds[i] = sec
		ls.buckets[i] = 0
	}
	ls.buckets[i] += n
	ls.mu.Unlock()
}

// quotaCheck returns whether the tenant is within its byte quota at
// time now, and if not, how long until enough of the window has rolled
// off to admit traffic again.
func (ls *limiterState) quotaCheck(limits *Tenant, now time.Time) Decision {
	if limits.QuotaBytes <= 0 {
		return Decision{OK: true}
	}
	sec := now.Unix()
	horizon := sec - int64(len(ls.buckets)) // buckets older than this are stale
	var used int64
	oldest := sec
	ls.mu.Lock()
	for i := range ls.buckets {
		if ls.seconds[i] > horizon && ls.seconds[i] <= sec {
			used += ls.buckets[i]
			if ls.buckets[i] > 0 && ls.seconds[i] < oldest {
				oldest = ls.seconds[i]
			}
		}
	}
	ls.mu.Unlock()
	if used < limits.QuotaBytes {
		return Decision{OK: true}
	}
	// The earliest non-empty bucket rolls off the window first; waiting
	// until then frees at least some budget.
	wait := time.Duration(oldest-horizon) * time.Second
	if wait < time.Second {
		wait = time.Second
	}
	return Decision{Reason: "quota", RetryAfter: wait}
}

// windowBytes reports current rolling-window byte usage (for /debug/vars).
func (ls *limiterState) windowBytes(now time.Time) int64 {
	sec := now.Unix()
	horizon := sec - int64(len(ls.buckets))
	var used int64
	ls.mu.Lock()
	for i := range ls.buckets {
		if ls.seconds[i] > horizon && ls.seconds[i] <= sec {
			used += ls.buckets[i]
		}
	}
	ls.mu.Unlock()
	return used
}

// secsDuration converts fractional seconds to a Duration, rounding up
// to a floor of one second so Retry-After is always >= 1.
func secsDuration(s float64) time.Duration {
	if s < 1 {
		return time.Second
	}
	if s > 3600 {
		return time.Hour
	}
	return time.Duration(math.Ceil(s)) * time.Second
}
