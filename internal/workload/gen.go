package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"codepack/internal/asm"
	"codepack/internal/program"
)

// Generate builds the synthetic benchmark described by p and assembles it.
func Generate(p Profile) (*program.Image, error) {
	src, err := Source(p)
	if err != nil {
		return nil, err
	}
	return asm.Assemble(p.Name, src)
}

// Source produces the assembly source for p.
func Source(p Profile) (string, error) {
	if p.TextKB < 4 || p.FuncBody < 16 || p.InnerLoop < 1 {
		return "", fmt.Errorf("workload: degenerate profile %+v", p)
	}
	if p.WalkEvery > 1 && p.WalkEvery&(p.WalkEvery-1) != 0 {
		return "", fmt.Errorf("workload: WalkEvery %d not a power of two", p.WalkEvery)
	}
	g := &generator{
		p:   p,
		rng: rand.New(rand.NewSource(p.Seed)),
	}
	g.plan()
	g.emitAll()
	return g.b.String(), nil
}

// Shape constants of the generated program.
const (
	segMembers    = 32 // pool functions called per segment
	indirectSlots = 8  // function-pointer table entries
	frameBytes    = 32
)

type generator struct {
	p   Profile
	rng *rand.Rand
	b   strings.Builder

	nFuncs    int
	nSegs     int
	funcCost  uint64 // dynamic instructions per pool-function call
	segCost   uint64
	kernCost  uint64 // per kernel call including call-site setup
	iters     uint64 // driver-loop trip count
	labels    int
	dataOff   int // $gp-relative start of the scratch data window
	dataSpan  int // bytes of the scratch window
	kernSpan  int // bytes of the kernel's cache-friendly window
	poolBases []int
	kernBases []int
	callOrder []int // permutation: call sequence -> layout index
	sched     []int // per-iteration segment call schedule (nil = all, in order)
}

// plan sizes the function pool so the text section hits TextKB and derives
// the exact dynamic cost of one driver iteration, from which the loop trip
// count follows.
func (g *generator) plan() {
	p := g.p
	funcWords := p.FuncBody + 6
	segWords := 2*segMembers + 6 + 5 // interleaved double calls; +5 indirect site
	kernelWords := 0
	if p.KernelIters > 0 {
		kernelWords = p.KernelBody + 6
	}
	driverWords := 64 // conservative; driver is tiny
	avail := p.TextKB*256 - kernelWords - driverWords
	g.nFuncs = avail * segMembers / (funcWords*segMembers + segWords)
	if g.nFuncs < indirectSlots {
		g.nFuncs = indirectSlots
	}
	g.nSegs = (g.nFuncs + segMembers - 1) / segMembers
	driverWords = g.nSegs + 24
	if p.WalkEvery == 0 {
		driverWords += g.startupSegs()
	}

	// Jump-overs mean only part of each emitted body executes.
	execBody := func(n int) int {
		if p.RunLen <= 0 {
			return n
		}
		return n * (p.RunLen + 1) / (p.RunLen + 1 + p.SkipLen)
	}
	g.funcCost = uint64(p.InnerLoop*(execBody(p.FuncBody)+2) + 4)
	g.segCost = 6 + 2*segMembers*(1+g.funcCost) // members are called twice (interleave)
	// Every fourth segment makes one rotating indirect call.
	g.kernCost = 0
	if p.KernelIters > 0 {
		g.kernCost = uint64(p.KernelIters*(execBody(p.KernelBody)+2)+4) + 2
	}

	walk := g.walkCost()
	var iterCost uint64
	switch {
	case p.WalkEvery == 0:
		iterCost = g.kernCost + 4
	case p.WalkEvery == 1:
		iterCost = g.kernCost + walk + 4
	default:
		iterCost = g.kernCost + walk/uint64(p.WalkEvery) + 6
	}
	if iterCost == 0 {
		iterCost = 1
	}
	g.iters = p.TargetDynamic/iterCost + 2

	g.dataOff = -32768 + indirectSlots*4
	g.dataSpan = p.DataKB * 1024
	g.kernSpan = 2048
	if g.dataSpan < g.kernSpan {
		g.kernSpan = g.dataSpan
	}
	// Memory operands address a shared palette of base offsets plus small
	// field offsets, like compiled struct accesses. This keeps the
	// low-halfword diversity realistic: a skewed head the dictionary
	// captures and a long tail that escapes as raw bits (Table 4).
	for i := 0; i < 20; i++ {
		base := g.rng.Intn(maxInt(1, (g.dataSpan-64)/4)) * 4
		g.poolBases = append(g.poolBases, base)
		if base < g.kernSpan-64 {
			g.kernBases = append(g.kernBases, base)
		}
	}
	if len(g.kernBases) == 0 {
		g.kernBases = []int{0, 64, 128, 256}
	}
	g.callOrder = g.rng.Perm(g.nFuncs)
	if p.HotSegs > 0 {
		g.buildSchedule()
		// Recompute the iteration cost from the actual schedule.
		var walk uint64
		for _, sg := range g.sched {
			walk += 1 + g.segCost
			if sg%4 == 0 {
				walk += 5 + g.funcCost
			}
		}
		g.iters = p.TargetDynamic/(g.kernCost+walk+4) + 2
	}
}

// buildSchedule samples the two-tier hot/cold segment call schedule.
func (g *generator) buildSchedule() {
	p := g.p
	perm := g.rng.Perm(g.nSegs)
	nHot := p.HotSegs
	if nHot > g.nSegs {
		nHot = g.nSegs
	}
	hot, tail := perm[:nHot], perm[nHot:]
	n := p.SchedLen
	if n <= 0 {
		n = 128
	}
	g.sched = make([]int, n)
	for i := range g.sched {
		// Immediate re-visits give a ~13KB reuse distance (one segment),
		// the rung separating 4KB from 16KB caches in Table 10.
		if i > 0 && g.rng.Float64() < p.RepeatProb {
			g.sched[i] = g.sched[i-1]
			continue
		}
		if len(tail) == 0 || g.rng.Float64() < p.HotShare {
			g.sched[i] = hot[g.rng.Intn(len(hot))]
		} else {
			g.sched[i] = tail[g.rng.Intn(len(tail))]
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (g *generator) startupSegs() int {
	f := g.p.WalkOnceFraction
	if f <= 0 || f > 1 {
		f = 1
	}
	n := int(f * float64(g.nSegs))
	if n < 1 {
		n = 1
	}
	return n
}

func (g *generator) walkCost() uint64 {
	var c uint64
	for s := 0; s < g.nSegs; s++ {
		c += 1 + g.segCost
		if s%4 == 0 {
			c += 5 + g.funcCost // rotating indirect call
		}
	}
	return c
}

func (g *generator) emitAll() {
	g.emitDriver()
	if g.p.KernelIters > 0 {
		g.emitKernel()
	}
	for s := 0; s < g.nSegs; s++ {
		g.emitSegment(s)
	}
	for f := 0; f < g.nFuncs; f++ {
		g.emitFunc(f)
	}
	g.emitData()
}

func (g *generator) line(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *generator) label() string {
	g.labels++
	return fmt.Sprintf("L%d", g.labels)
}

func (g *generator) emitDriver() {
	g.line("\t.text")
	g.line("main:")
	g.line("\tli $s7, 0")
	g.line("\tli $s6, %d", g.iters)
	if g.p.WalkEvery == 0 {
		// MediaBench shape: touch the leading fraction of the text once,
		// then run kernels.
		for s := 0; s < g.startupSegs(); s++ {
			g.line("\tjal seg_%d", s)
		}
	}
	g.line("driver_loop:")
	if g.p.KernelIters > 0 {
		g.line("\tli $a0, %d", g.p.KernelIters)
		g.line("\tjal kernel")
	}
	if g.p.WalkEvery >= 1 {
		skip := ""
		if g.p.WalkEvery > 1 {
			skip = g.label()
			g.line("\tandi $t8, $s7, %d", g.p.WalkEvery-1)
			g.line("\tbnez $t8, %s", skip)
		}
		if g.sched != nil {
			for _, sg := range g.sched {
				g.line("\tjal seg_%d", sg)
			}
		} else {
			for s := 0; s < g.nSegs; s++ {
				g.line("\tjal seg_%d", s)
			}
		}
		if skip != "" {
			g.line("%s:", skip)
		}
	}
	g.line("\taddiu $s7, $s7, 1")
	g.line("\tbne $s7, $s6, driver_loop")
	g.line("\tli $v0, 10")
	g.line("\tsyscall")
}

func (g *generator) emitKernel() {
	g.line("kernel:")
	g.line("\taddiu $sp, $sp, -%d", frameBytes)
	g.line("\tmove $t9, $a0")
	g.line("kernel_loop:")
	g.emitBody(g.p.KernelBody, g.kernSpan)
	g.line("\taddiu $t9, $t9, -1")
	g.line("\tbgtz $t9, kernel_loop")
	g.line("\taddiu $sp, $sp, %d", frameBytes)
	g.line("\tjr $ra")
}

func (g *generator) emitSegment(s int) {
	g.line("seg_%d:", s)
	g.line("\taddiu $sp, $sp, -8")
	g.line("\tsw $ra, 4($sp)")
	lo := s * segMembers
	// Call order is a global shuffle of layout order, so misses land at
	// arbitrary offsets within compression blocks (exercising the serial
	// decode penalty and critical-word-first) and the output buffer's
	// prefetch is only partially useful, as in real code. Members are
	// called in groups of eight, each group twice: the ~3KB group reuse
	// distance separates 1KB from 4KB caches in Table 10.
	const group = 8
	for base := 0; base < segMembers; base += group {
		for pass := 0; pass < 2; pass++ {
			for m := base; m < base+group && m < segMembers; m++ {
				g.line("\tjal f_%d", g.callOrder[(lo+m)%g.nFuncs])
			}
		}
	}
	if s%4 == 0 {
		// Rotating indirect call through the function-pointer table:
		// the target changes every driver iteration, exercising the BTB.
		g.line("\tandi $at, $s7, %d", indirectSlots-1)
		g.line("\tsll $at, $at, 2")
		g.line("\taddu $at, $at, $gp")
		g.line("\tlw $t8, -32768($at)")
		g.line("\tjalr $t8")
	}
	g.line("\tlw $ra, 4($sp)")
	g.line("\taddiu $sp, $sp, 8")
	g.line("\tjr $ra")
}

func (g *generator) emitFunc(f int) {
	g.line("f_%d:", f)
	g.line("\taddiu $sp, $sp, -%d", frameBytes)
	g.line("\tli $t9, %d", g.p.InnerLoop)
	g.line("f_%d_loop:", f)
	g.emitBody(g.p.FuncBody, g.dataSpan)
	g.line("\taddiu $t9, $t9, -1")
	g.line("\tbgtz $t9, f_%d_loop", f)
	g.line("\taddiu $sp, $sp, %d", frameBytes)
	g.line("\tjr $ra")
}

func (g *generator) emitData() {
	g.line("\t.data")
	g.line("functab:")
	for i := 0; i < indirectSlots; i++ {
		g.line("\t.word f_%d", i*g.nFuncs/indirectSlots)
	}
	g.line("scratch:")
	g.line("\t.space %d", g.p.DataKB*1024)
}

// Scratch registers available to generated bodies. $t8 is the branch temp,
// $t9 the loop counter, $at the assembler temp; $s6/$s7 belong to the
// driver. Weights skew toward the low temporaries, as compiled code does.
var destRegs = []string{
	"$t0", "$t0", "$t1", "$t1", "$t2", "$t2", "$t3", "$t3",
	"$t4", "$t5", "$t6", "$t7", "$v0", "$v1", "$a1", "$a2", "$a3",
}

var smallImms = []int{0, 0, 1, 1, 2, 3, 4, 4, 8, 8, 12, 16, 20, 24, 32, -1, -2, -4, -8}

// emitBody writes exactly n instructions of profile-weighted straight-line
// code; span bounds the $gp-relative data window it touches.
func (g *generator) emitBody(n, span int) {
	p := g.p
	emitted := 0
	reg := func() string { return destRegs[g.rng.Intn(len(destRegs))] }
	bases := g.poolBases
	if span <= g.kernSpan {
		bases = g.kernBases
	}
	gpOff := func() int {
		// Quadratic skew: early palette entries dominate, giving the
		// frequency head that CodePack's small classes capture.
		r := g.rng.Float64()
		base := bases[int(r*r*r*float64(len(bases)))]
		return g.dataOff + base + g.rng.Intn(12)*4
	}
	run, runTarget := 0, g.nextRun()
	for emitted < n {
		// Break the body into short runs separated by forward jumps over
		// dead words, approximating real basic-block structure.
		if p.RunLen > 0 && run >= runTarget && n-emitted >= p.SkipLen+2 {
			skip := g.label()
			g.line("\tb %s", skip) // short relative branch: repeated offsets compress well
			for k := 0; k < p.SkipLen; k++ {
				g.deadFiller(reg, gpOff)
			}
			g.line("%s:", skip)
			emitted += 1 + p.SkipLen
			run, runTarget = 0, g.nextRun()
			continue
		}
		left := n - emitted
		r := g.rng.Float64()
		sizeBefore := emitted
		switch {
		case r < p.LoadFrac:
			if g.rng.Intn(4) == 0 {
				g.line("\tlw %s, %d($sp)", reg(), g.rng.Intn(frameBytes/4)*4)
			} else {
				g.line("\tlw %s, %d($gp)", reg(), gpOff())
			}
			emitted++
		case r < p.LoadFrac+p.StoreFrac:
			if g.rng.Intn(4) == 0 {
				g.line("\tsw %s, %d($sp)", reg(), g.rng.Intn(frameBytes/4)*4)
			} else {
				g.line("\tsw %s, %d($gp)", reg(), gpOff())
			}
			emitted++
		case r < p.LoadFrac+p.StoreFrac+p.BranchFrac && left >= 4:
			emitted += g.emitBranch(reg)
		case r < p.LoadFrac+p.StoreFrac+p.BranchFrac+p.FPFrac && left >= 4:
			f1, f2, f3 := g.rng.Intn(8)*2, g.rng.Intn(8)*2, g.rng.Intn(8)*2
			g.line("\tlwc1 $f%d, %d($gp)", f1, gpOff())
			if g.rng.Intn(2) == 0 {
				g.line("\tadd.d $f%d, $f%d, $f%d", f3, f1, f2)
			} else {
				g.line("\tmul.d $f%d, $f%d, $f%d", f3, f1, f2)
			}
			g.line("\tswc1 $f%d, %d($gp)", f3, gpOff())
			emitted += 3
		case r < p.LoadFrac+p.StoreFrac+p.BranchFrac+p.FPFrac+p.RareFrac:
			// Unique constants: the raw halfwords of Table 4.
			if left >= 2 && g.rng.Intn(2) == 0 {
				d := reg()
				g.line("\tlui %s, %d", d, g.rng.Intn(1<<16))
				g.line("\tori %s, %s, %d", d, d, g.rng.Intn(1<<16))
				emitted += 2
			} else {
				g.line("\tori %s, %s, %d", reg(), reg(), g.rng.Intn(1<<16))
				emitted++
			}
		default:
			emitted += g.emitALU(reg, left)
		}
		run += emitted - sizeBefore
	}
}

// nextRun draws the next straight-line run length.
func (g *generator) nextRun() int {
	if g.p.RunLen <= 0 {
		return 1 << 30
	}
	return g.p.RunLen/2 + g.rng.Intn(g.p.RunLen)
}

// deadFiller emits one never-executed instruction with realistic halfword
// statistics (it still counts toward text size and compression).
func (g *generator) deadFiller(reg func() string, gpOff func() int) {
	switch g.rng.Intn(5) {
	case 0:
		g.line("\tlw %s, %d($gp)", reg(), gpOff())
	case 1:
		g.line("\tsw %s, %d($gp)", reg(), gpOff())
	case 2:
		g.line("\taddiu %s, %s, %d", reg(), reg(), smallImms[g.rng.Intn(len(smallImms))])
	case 3:
		g.line("\taddu %s, %s, %s", reg(), reg(), reg())
	default:
		g.line("\tsll %s, %s, %d", reg(), reg(), g.rng.Intn(8))
	}
}

// emitBranch writes a 4-instruction branch pattern and returns 4:
// 20% data-dependent (taken 7 of 8 times, a biased while-condition) and 80%
// never-taken guards, mimicking compiled error checks.
func (g *generator) emitBranch(reg func() string) int {
	skip := g.label()
	a, b := reg(), reg()
	if g.rng.Intn(10) < 2 {
		g.line("\tandi $t8, %s, 7", a)
		g.line("\tbnez $t8, %s", skip)
		g.line("\taddu %s, %s, %s", b, b, a)
		g.line("\txori %s, %s, %d", a, a, 1+g.rng.Intn(15))
	} else {
		g.line("\tbne %s, %s, %s", a, a, skip)
		g.line("\taddiu %s, %s, %d", b, b, smallImms[g.rng.Intn(len(smallImms))])
		g.line("\tsll %s, %s, %d", a, a, 1+g.rng.Intn(3))
	}
	g.line("%s:", skip)
	return 4
}

// emitALU writes 1-3 integer instructions and returns the count. Multiplies
// stay at a few percent and divides well under one percent, as in compiled
// code; more would bottleneck the single multiplier unit of Table 2.
func (g *generator) emitALU(reg func() string, left int) int {
	d, a, b := reg(), reg(), reg()
	switch k := g.rng.Intn(100); {
	case k < 30:
		ops := []string{"addu", "subu", "and", "or", "xor", "slt", "sltu", "addu"}
		g.line("\t%s %s, %s, %s", ops[g.rng.Intn(len(ops))], d, a, b)
		return 1
	case k < 65:
		g.line("\taddiu %s, %s, %d", d, a, smallImms[g.rng.Intn(len(smallImms))])
		return 1
	case k < 80:
		g.line("\tsll %s, %s, %d", d, a, g.rng.Intn(8))
		return 1
	case k < 90:
		// Stir in the iteration counter so values, and therefore
		// data-dependent branches, vary across driver iterations.
		g.line("\taddu %s, %s, $s7", d, a)
		return 1
	case k < 94 && left >= 2:
		g.line("\tmult %s, %s", a, b)
		g.line("\tmflo %s", d)
		return 2
	case k < 95 && left >= 3:
		g.line("\tori $at, %s, 1", a)
		g.line("\tdivu %s, $at", b)
		g.line("\tmflo %s", d)
		return 3
	default:
		g.line("\tsrl %s, %s, %d", d, a, g.rng.Intn(8))
		return 1
	}
}
