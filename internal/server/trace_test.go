package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"codepack"
	"codepack/internal/peer"
	"codepack/internal/trace"
)

var hexIDRE = regexp.MustCompile(`^[0-9a-f]{16}$`)

// postWithID posts a compress request carrying an explicit (possibly
// empty) X-Request-ID and returns the response.
func postWithID(t *testing.T, url, id string) *http.Response {
	t.Helper()
	b, err := json.Marshal(CompressRequest{ProgramRef: ProgramRef{Asm: testAsm}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/compress", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id != "" {
		req.Header.Set(trace.Header, id)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	io.Copy(io.Discard, resp.Body)
	return resp
}

// TestRequestIDEcho covers the header contract: a sane caller ID is
// echoed, a missing or garbage one is replaced with a generated ID.
func TestRequestIDEcho(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	if got := postWithID(t, ts.URL, "client-abc-123").Header.Get(trace.Header); got != "client-abc-123" {
		t.Errorf("provided ID not echoed: got %q", got)
	}
	if got := postWithID(t, ts.URL, "").Header.Get(trace.Header); !hexIDRE.MatchString(got) {
		t.Errorf("generated ID %q does not look like 16 hex chars", got)
	}
	if got := postWithID(t, ts.URL, `bad id "quoted"`).Header.Get(trace.Header); !hexIDRE.MatchString(got) {
		t.Errorf("garbage ID not replaced with a generated one: got %q", got)
	}
	long := strings.Repeat("x", 100)
	if got := postWithID(t, ts.URL, long).Header.Get(trace.Header); got == long || !hexIDRE.MatchString(got) {
		t.Errorf("oversized ID not replaced: got %q", got)
	}
}

// syncBuffer makes a bytes.Buffer safe to share between the server's
// logging goroutines and the test's reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestIDInAccessLog: the access log line for a request carries
// its request ID, so a trace can be followed through the logs.
func TestRequestIDInAccessLog(t *testing.T) {
	var buf syncBuffer
	log := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	_, ts := newTestServer(t, Config{Logger: log})

	postWithID(t, ts.URL, "trace-me-42")
	waitFor(t, func() bool {
		return strings.Contains(buf.String(), "request_id=trace-me-42")
	})
}

// TestRequestIDPropagatesToPeer: a cache miss that consults the ring
// owner forwards the originating request's ID on the outbound fetch.
func TestRequestIDPropagatesToPeer(t *testing.T) {
	var mu sync.Mutex
	var seenIDs []string
	capture := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seenIDs = append(seenIDs, r.Header.Get(trace.Header))
		mu.Unlock()
		http.NotFound(w, r)
	}))
	defer capture.Close()

	lnB, urlB := reserveURL(t)
	sb, err := New(Config{Logger: quietLogger(), Peer: fastPeerConfig(urlB, capture.URL)})
	if err != nil {
		t.Fatal(err)
	}
	startOn(t, sb, lnB)

	ring := peer.NewRing([]string{capture.URL, urlB}, peer.DefaultReplicas)
	im := imageOwnedBy(t, ring, capture.URL)
	b, err := json.Marshal(CompressRequest{ProgramRef: ProgramRef{
		ImageB64: imageB64Of(im)}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, urlB+"/v1/compress", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.Header, "edge-req-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress returned %d, want 200", resp.StatusCode)
	}

	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, id := range seenIDs {
		if id == "edge-req-7" {
			found = true
		}
	}
	if !found {
		t.Errorf("peer fetch did not carry the request ID; saw %q", seenIDs)
	}
}

func imageB64Of(im *codepack.Image) string {
	return base64.StdEncoding.EncodeToString(im.Marshal())
}
