package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"codepack/internal/tenant"
)

// apiKey extracts the presented API key: "Authorization: Bearer <key>"
// (canonical) or "X-Api-Key: <key>" (curl-friendly). Empty when the
// caller presented neither.
func apiKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if key, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return strings.TrimSpace(key)
		}
		return auth // a malformed scheme fails lookup, not silently anon
	}
	return strings.TrimSpace(r.Header.Get("X-Api-Key"))
}

// authenticate resolves the request's tenant and runs its rate-limit and
// byte-quota admission checks. The tenant is returned even when the
// request is denied (for labels); herr carries the 401/429 to write.
func (s *Server) authenticate(r *http.Request) (*tenant.Tenant, *httpError) {
	key := apiKey(r)
	tn, ok := s.tenants.Lookup(key)
	if !ok {
		s.metrics.authFailures.add(1)
		msg := "unknown API key"
		if key == "" {
			msg = "missing API key (Authorization: Bearer <key>)"
		}
		return nil, &httpError{code: http.StatusUnauthorized, msg: msg}
	}
	d := s.tenants.Admit(tn, time.Now())
	if !d.OK {
		s.metrics.tenantLimited(tn.ID, d.Reason)
		return tn, &httpError{
			code:       http.StatusTooManyRequests,
			msg:        fmt.Sprintf("tenant %s over its %s limit, retry later", tn.ID, d.Reason),
			retryAfter: int(d.RetryAfter / time.Second),
		}
	}
	return tn, nil
}

// verifyInternalAuth checks the HMAC signature on a node-to-node
// request. With no cluster key configured the internal endpoints are
// open (the pre-tenancy trusted-network deployment). The body is read
// (already capped by MaxBytesReader) to verify the payload hash, then
// replaced so the handler sees it intact.
func (s *Server) verifyInternalAuth(r *http.Request) *httpError {
	key := s.tenants.ClusterKey()
	if len(key) == 0 {
		return nil
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return badRequest("read body: %v", err)
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	hdr := r.Header.Get(tenant.InternalHeader)
	if err := tenant.VerifyInternal(key, hdr, r.Method, r.URL.Path, body, time.Now()); err != nil {
		s.metrics.internalAuthFailures.add(1)
		s.log.Warn("rejected unsigned or mis-signed internal request",
			"method", r.Method, "path", r.URL.Path, "remote", r.RemoteAddr, "err", err)
		return &httpError{code: http.StatusUnauthorized, msg: "invalid internal request signature"}
	}
	return nil
}
