package server

import (
	"context"
	"net/http"
	"sync"

	"codepack"
	"codepack/internal/trace"
)

// flightGroup coalesces concurrent cache misses for the same digest:
// the first request (the leader) runs the fill — peer fetch and/or
// compression — while followers park on its completion instead of
// burning a worker each on identical dictionary builds. Keys are held
// only while a fill is in flight.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done   chan struct{}
	comp   *codepack.Compressed
	cached bool
	herr   *httpError
}

// do runs fn for key unless an identical fill is already in flight, in
// which case it waits for that fill's result. The follower bool
// reports which side this call was. A follower whose ctx ends while
// waiting abandons the wait (the leader's fill continues and still
// lands in the cache).
func (g *flightGroup) do(ctx context.Context, key string, fn func(ctx context.Context) (*codepack.Compressed, bool, *httpError)) (comp *codepack.Compressed, cached bool, follower bool, herr *httpError) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		_, ws := trace.Start(ctx, "singleflight-wait")
		defer ws.End()
		select {
		case <-f.done:
			return f.comp, true, true, f.herr
		case <-ctx.Done():
			ws.SetAttr("outcome", "abandoned")
			return nil, false, true, &httpError{code: http.StatusServiceUnavailable,
				msg: "request ended while waiting on an in-flight compression"}
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.comp, f.cached, f.herr = fn(ctx)
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.comp, f.cached, false, f.herr
}
