package server

import (
	"context"
	"errors"
	"sync"
)

// errSaturated reports a full queue: the caller sheds the request (429)
// instead of queueing unboundedly.
var errSaturated = errors.New("server: worker pool saturated")

// errClosed reports a pool that has begun draining for shutdown.
var errClosed = errors.New("server: worker pool closed")

// job is one unit of pooled work. fn runs on a worker goroutine unless the
// submitter's context was already cancelled by the time a worker picks the
// job up (a queued job whose client gave up is skipped, not executed).
type job struct {
	ctx  context.Context
	fn   func()
	done chan struct{}
}

// pool is a bounded worker pool: a fixed number of workers drain a
// fixed-capacity queue. Two pools (light codec work, heavy simulations)
// keep one class of traffic from starving the other.
type pool struct {
	name    string
	workers int
	jobs    chan *job
	wg      sync.WaitGroup

	mu     sync.RWMutex
	closed bool
}

// newPool starts workers goroutines draining a queue of capacity queueLen
// (0 = no queue: a job is admitted only if a worker is free right now).
func newPool(name string, workers, queueLen int) *pool {
	if workers < 1 {
		workers = 1
	}
	if queueLen < 0 {
		queueLen = 0
	}
	p := &pool{name: name, workers: workers, jobs: make(chan *job, queueLen)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		if j.ctx.Err() == nil {
			j.fn()
		}
		close(j.done)
	}
}

// do submits fn and waits for it to finish or for ctx to end. It never
// blocks on admission: a full queue returns errSaturated immediately. If
// ctx ends while the job is queued or running, do returns ctx's error;
// the job itself is skipped if still queued (a running fn is responsible
// for honouring ctx, which the simulation path does).
func (p *pool) do(ctx context.Context, fn func()) error {
	j := &job{ctx: ctx, fn: fn, done: make(chan struct{})}
	// The read lock pairs with close()'s write lock so a send can never
	// race the channel close.
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return errClosed
	}
	select {
	case p.jobs <- j:
		p.mu.RUnlock()
	default:
		p.mu.RUnlock()
		return errSaturated
	}
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// depth returns the number of admitted jobs not yet picked up by a worker.
func (p *pool) depth() int { return len(p.jobs) }

// retryAfterSecs is the Retry-After value for a shed request, derived
// from the live backlog instead of a constant: the queue drains at
// roughly one job per worker per unit time, so a client should wait
// about one unit plus the backlog-per-worker ahead of it. Clamped so a
// pathological backlog never tells clients to go away for minutes.
func (p *pool) retryAfterSecs() int {
	secs := 1 + p.depth()/max(p.workers, 1)
	if secs > 30 {
		secs = 30
	}
	return secs
}

// close drains the pool: no new jobs are admitted, already-admitted jobs
// run to completion, and close returns once every worker has exited.
func (p *pool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
