package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"slices"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"codepack"
	"codepack/internal/peer"
)

// freeURL reserves a kernel-assigned loopback port and releases it so a
// daemon can bind it. The address must be known before either daemon
// starts: both appear in each other's -peers flag.
func freeURL(t *testing.T) (addr, url string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr = ln.Addr().String()
	ln.Close()
	return addr, "http://" + addr
}

// asmOwnedBy generates assembly variants until one's image digest lands
// on the wanted ring member. The server assembles inline asm under the
// fixed name "request", but the digest covers only the marshalled image
// (entry, bases, text, data), so the test can predict it with any name.
func asmOwnedBy(t *testing.T, ring *peer.Ring, owner string, salt int) string {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		asm := strings.Replace(testAsm, "li   $s0, 50",
			fmt.Sprintf("li   $s0, %d", 50+salt*10_000+i), 1)
		im, err := codepack.Assemble("request", asm)
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(codepack.ImageDigest(im)) == owner {
			return asm
		}
	}
	t.Fatalf("no generated program hashed to owner %s", owner)
	return ""
}

// compressAsm is daemon.compress for an arbitrary program.
func (d *daemon) compressAsm(t *testing.T, asm string) compressReply {
	t.Helper()
	body, err := json.Marshal(map[string]string{"asm": asm})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.url+"/v1/compress", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("compress: %v; stderr:\n%s", err, d.stderr.String())
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status %d: %s", resp.StatusCode, raw)
	}
	var out compressReply
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func metricNumber(t *testing.T, body, name string) float64 {
	t.Helper()
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(name) + ` ([0-9.e+-]+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %q not found in scrape:\n%s", name, body)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %q: %v", name, err)
	}
	return v
}

// waitDaemonMetric polls a daemon's /metrics until the named metric
// reaches want.
func waitDaemonMetric(t *testing.T, d *daemon, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var got float64
	for time.Now().Before(deadline) {
		if got = metricNumber(t, d.metrics(t), name); got == want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s = %v, want %v (timed out); stderr:\n%s", name, got, want, d.stderr.String())
}

// TestDynamicJoinAndLeave is the dynamic-membership acceptance test
// against real processes: a third instance joins a running two-node
// cluster (its seed list names only one member) and serves a
// pre-existing digest warm with zero recompression, then leaves
// gracefully — and a digest only it held stays fetchable because the
// shutdown handoff moved it to the new owner.
func TestDynamicJoinAndLeave(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess round trip")
	}

	addrA, urlA := freeURL(t)
	addrB, urlB := freeURL(t)
	addrC, urlC := freeURL(t)
	ring3 := peer.NewRing([]string{urlA, urlB, urlC}, peer.DefaultReplicas)

	// A and B know only each other; C is nobody's seed.
	clusterFlags := []string{"-peer-timeout", "500ms", "-peer-heartbeat", "100ms"}
	dA := startDaemon(t, append([]string{"-addr", addrA, "-peer-self", urlA, "-peers", urlB}, clusterFlags...)...)
	dB := startDaemon(t, append([]string{"-addr", addrB, "-peer-self", urlB, "-peers", urlA}, clusterFlags...)...)
	waitDaemonMetric(t, dA, "cpackd_peer_members", 2)

	// Compressed on A before C exists: in the eventual three-member ring
	// this digest belongs to C.
	joinAsm := asmOwnedBy(t, ring3, urlC, 20)
	first := dA.compressAsm(t, joinAsm)
	if first.Cached {
		t.Fatal("first compression reported cached")
	}

	// C joins the running cluster through its single seed A.
	dC := startDaemon(t, append([]string{"-addr", addrC, "-peer-self", urlC, "-peers", urlA}, clusterFlags...)...)
	waitDaemonMetric(t, dC, "cpackd_peer_members", 3)
	waitDaemonMetric(t, dA, "cpackd_peer_members", 3)
	waitDaemonMetric(t, dB, "cpackd_peer_members", 3)

	// The join was a ring change on A, so anti-entropy hands the digest
	// to its new owner C; the joiner then serves it warm.
	deadline := time.Now().Add(15 * time.Second)
	var onC compressReply
	for {
		if onC = dC.compressAsm(t, joinAsm); onC.Cached || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !onC.Cached {
		t.Error("joiner did not serve the rebalanced digest warm (recompressed)")
	}
	if onC.Digest != first.Digest || onC.CompressedB64 != first.CompressedB64 {
		t.Error("joiner served a different payload than the original compression")
	}

	// A digest owned and held only by C: compressed on its owner, it is
	// never replicated anywhere else.
	leaveAsm := asmOwnedBy(t, ring3, urlC, 21)
	leaveFirst := dC.compressAsm(t, leaveAsm)
	if leaveFirst.Cached {
		t.Fatal("first compression of the leave digest reported cached")
	}

	// Graceful departure: SIGTERM drains C, whose shutdown handoff must
	// push its digests to their post-departure owners.
	if err := dC.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- dC.cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("graceful leave exited with %v; stderr:\n%s", err, dC.stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("leaving instance did not exit after SIGTERM")
	}
	waitDaemonMetric(t, dA, "cpackd_peer_members", 2)
	waitDaemonMetric(t, dB, "cpackd_peer_members", 2)

	// The survivors serve C's digest warm from the handoff.
	ring2 := peer.NewRing([]string{urlA, urlB}, peer.DefaultReplicas)
	im, err := codepack.Assemble("request", leaveAsm)
	if err != nil {
		t.Fatal(err)
	}
	owner := dA
	if ring2.Owner(codepack.ImageDigest(im)) == urlB {
		owner = dB
	}
	after := owner.compressAsm(t, leaveAsm)
	if !after.Cached {
		t.Error("digest held only by the departed member was recompressed; leave handoff failed")
	}
	if after.Digest != leaveFirst.Digest || after.CompressedB64 != leaveFirst.CompressedB64 {
		t.Error("survivor served a different payload than the departed member's compression")
	}
}

// asmWithOwners is asmOwnedBy for a replica set: it generates assembly
// variants until one's digest places its first len(want) replicas on
// exactly want, in that order.
func asmWithOwners(t *testing.T, ring *peer.Ring, salt int, want ...string) string {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		asm := strings.Replace(testAsm, "li   $s0, 50",
			fmt.Sprintf("li   $s0, %d", 50+salt*10_000+i), 1)
		im, err := codepack.Assemble("request", asm)
		if err != nil {
			t.Fatal(err)
		}
		if slices.Equal(ring.Owners(codepack.ImageDigest(im), len(want)), want) {
			return asm
		}
	}
	t.Fatalf("no generated program placed its replicas on %v in order", want)
	return ""
}

// TestReplicatedClusterCrashFailoverAndReadRepair is the R=2 acceptance
// test against real processes: a digest compressed on its primary owner
// survives that owner's SIGKILL because fetches fall through to the
// surviving replica; an entry born while the primary was down is hinted;
// and after the primary restarts empty, the first read through it
// repairs it from the verified replica (cpackd_peer_readrepair_total
// > 0) — proven by killing the replica too and reading the repaired
// copy back from the restarted primary.
func TestReplicatedClusterCrashFailoverAndReadRepair(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess round trip")
	}

	addrA, urlA := freeURL(t)
	addrB, urlB := freeURL(t)
	addrC, urlC := freeURL(t)
	addrD, urlD := freeURL(t)
	ring := peer.NewRing([]string{urlA, urlB, urlC, urlD}, peer.DefaultReplicas)

	// Membership is frozen (hour-scale heartbeats and timers): the ring
	// never drops the crashed primary, so fetches keep walking the full
	// replica set and no anti-entropy pass rebalances entries behind the
	// test's back. Seeds are registered alive at boot, so the member
	// count is full without a single heartbeat round.
	frozen := []string{"-replicas", "2", "-peer-timeout", "500ms",
		"-peer-heartbeat", "30m", "-peer-suspect-after", "1h", "-peer-dead-after", "2h"}
	boot := func(addr, self string, seeds ...string) *daemon {
		return startDaemon(t, append([]string{"-addr", addr, "-peer-self", self,
			"-peers", strings.Join(seeds, ",")}, frozen...)...)
	}
	dA := boot(addrA, urlA, urlB, urlC, urlD)
	dB := boot(addrB, urlB, urlA, urlC, urlD)
	dC := boot(addrC, urlC, urlA, urlB, urlD)
	dD := boot(addrD, urlD, urlA, urlB, urlC)
	for _, d := range []*daemon{dA, dB, dC, dD} {
		waitDaemonMetric(t, d, "cpackd_peer_members", 4)
	}

	// d1 is compressed on its primary owner A and replicated to B.
	asm1 := asmWithOwners(t, ring, 30, urlA, urlB)
	first := dA.compressAsm(t, asm1)
	if first.Cached {
		t.Fatal("first compression on the primary reported cached")
	}
	waitDaemonMetric(t, dB, "cpackd_cache_entries", 1)

	// SIGKILL the primary owner.
	if err := dA.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	dA.cmd.Wait()

	// Fallthrough: a non-owner's fetch walks [A, B], rides past the dead
	// primary and serves warm from the surviving replica.
	onD := dD.compressAsm(t, asm1)
	if !onD.Cached {
		t.Error("fetch with a dead primary did not serve warm from the replica")
	}
	if onD.Digest != first.Digest || onD.CompressedB64 != first.CompressedB64 {
		t.Error("replica-served payload differs from the primary's compression")
	}
	mD := dD.metrics(t)
	if got := metricNumber(t, mD, "cpackd_peer_replica_fallthroughs_total"); got != 1 {
		t.Errorf("cpackd_peer_replica_fallthroughs_total on D = %v, want 1", got)
	}
	if got := metricNumber(t, mD, "cpackd_peer_hits_total"); got != 1 {
		t.Errorf("cpackd_peer_hits_total on D = %v, want 1", got)
	}
	if got := metricNumber(t, mD, "cpackd_peer_replica_factor"); got != 2 {
		t.Errorf("cpackd_peer_replica_factor on D = %v, want 2", got)
	}

	// d2 is born on the surviving replica while its primary is down: the
	// replication push to A fails and is buffered as a hint.
	asm2 := asmWithOwners(t, ring, 31, urlA, urlB)
	second := dB.compressAsm(t, asm2)
	if second.Cached {
		t.Fatal("first compression of the handoff digest reported cached")
	}
	waitDaemonMetric(t, dB, "cpackd_peer_handoff_hinted_total", 1)
	if got := metricNumber(t, dB.metrics(t), "cpackd_peer_handoff_pending"); got != 1 {
		t.Errorf("cpackd_peer_handoff_pending on B = %v, want 1", got)
	}

	// The primary restarts empty (no -cache-dir): the crash wiped its
	// copy of d1 and it never saw d2. Its seed list names only the
	// pristine C, so no survivor holding entries sees a ring change that
	// would trigger an anti-entropy repair behind the test.
	dA2 := startDaemon(t, append([]string{"-addr", addrA, "-peer-self", urlA,
		"-peers", urlC}, frozen...)...)

	// Read-repair: C misses d2 and walks [A, B] — the restarted primary
	// answers a clean 404, the replica a verified hit — so C serves warm
	// and re-offers the entry to the lagging primary.
	onC := dC.compressAsm(t, asm2)
	if !onC.Cached {
		t.Error("read through the lagging primary did not serve warm from the replica")
	}
	if onC.Digest != second.Digest || onC.CompressedB64 != second.CompressedB64 {
		t.Error("read-repair read served a different payload than the replica's compression")
	}
	mC := dC.metrics(t)
	if got := metricNumber(t, mC, "cpackd_peer_readrepair_total"); got != 1 {
		t.Errorf("cpackd_peer_readrepair_total on C = %v, want 1", got)
	}
	if got := metricNumber(t, mC, "cpackd_peer_replica_fallthroughs_total"); got != 1 {
		t.Errorf("cpackd_peer_replica_fallthroughs_total on C = %v, want 1", got)
	}
	waitDaemonMetric(t, dA2, "cpackd_cache_entries", 1)

	// The repaired copy is real: with the replica gone too, the restarted
	// primary serves d2 from the repair — byte-identical, no recompression.
	if err := dB.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	dB.cmd.Wait()
	onA := dA2.compressAsm(t, asm2)
	if !onA.Cached {
		t.Error("restarted primary recompressed a digest read-repair delivered")
	}
	if onA.Digest != second.Digest || onA.CompressedB64 != second.CompressedB64 {
		t.Error("repaired entry differs from the replica's compression")
	}
}

// TestPeerFlagErrors exercises run()'s cluster-flag validation.
func TestPeerFlagErrors(t *testing.T) {
	if err := run([]string{"-peers", "http://127.0.0.1:1"}); err == nil {
		t.Error("-peers without -peer-self accepted")
	}
	if err := run([]string{"-peer-self", "http://127.0.0.1:1"}); err == nil {
		t.Error("-peer-self without -peers accepted")
	}
	if err := run([]string{"-addr", "127.0.0.1:0",
		"-peer-self", "http://127.0.0.1:1", "-peers", "not a url"}); err == nil {
		t.Error("malformed peer URL accepted")
	}
	if err := run([]string{"-addr", "127.0.0.1:0", "-cache", "-1",
		"-peer-self", "http://127.0.0.1:1", "-peers", "http://127.0.0.1:2"}); err == nil {
		t.Error("clustering with a disabled cache accepted")
	}
}

// TestTwoInstanceCluster is the cluster acceptance test: two real
// cpackd processes form a warm tier — a digest compressed on its owner
// is served by the other instance with zero recompression — and
// SIGKILLing one degrades the survivor to local compression with no
// failed requests and an opened breaker.
func TestTwoInstanceCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess round trip")
	}

	addrA, urlA := freeURL(t)
	addrB, urlB := freeURL(t)
	ring := peer.NewRing([]string{urlA, urlB}, peer.DefaultReplicas)

	dA := startDaemon(t, "-addr", addrA, "-peer-self", urlA, "-peers", urlB,
		"-peer-timeout", "500ms")
	dB := startDaemon(t, "-addr", addrB, "-peer-self", urlB, "-peers", urlA,
		"-peer-timeout", "500ms")

	// Warm tier: compress on the owner, read from the peer.
	warmAsm := asmOwnedBy(t, ring, urlA, 0)
	first := dA.compressAsm(t, warmAsm)
	if first.Cached {
		t.Fatal("first compression on the owner reported cached")
	}
	second := dB.compressAsm(t, warmAsm)
	if !second.Cached {
		t.Error("peer-served compression did not report cached (recompressed?)")
	}
	if second.Digest != first.Digest || second.CompressedB64 != first.CompressedB64 {
		t.Error("peer-served payload differs from the owner's compression")
	}
	mB := dB.metrics(t)
	if got := metricNumber(t, mB, "cpackd_peer_hits_total"); got != 1 {
		t.Errorf("cpackd_peer_hits_total on B = %v, want 1", got)
	}

	// Kill the owner mid-run: the survivor must keep answering every
	// request by compressing locally, and its breaker must open.
	if err := dA.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	dA.cmd.Wait()

	for i := 1; i <= 4; i++ {
		reply := dB.compressAsm(t, asmOwnedBy(t, ring, urlA, i))
		if reply.Cached {
			t.Errorf("request %d reported cached with its owner dead", i)
		}
	}
	mB = dB.metrics(t)
	if got := metricNumber(t, mB, "cpackd_peer_errors_total"); got < 1 {
		t.Errorf("cpackd_peer_errors_total on B = %v, want >= 1", got)
	}
	opens := fmt.Sprintf("cpackd_peer_breaker_opens_total{peer=%q}", urlA)
	if got := metricNumber(t, mB, opens); got < 1 {
		t.Errorf("%s = %v, want >= 1", opens, got)
	}

	// The survivor still drains cleanly.
	if err := dB.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- dB.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("graceful shutdown exited with %v; stderr:\n%s", err, dB.stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("surviving instance did not exit after SIGTERM")
	}
}
