package decomp

import (
	"testing"

	"codepack/internal/core"
	"codepack/internal/isa"
	"codepack/internal/mem"
)

// Cycle-exact tests for the software handler's DecodeWholeBlock=false
// path, which decodes only up to the end of the requested line. All use
// paperComp (block 0 encodes at exactly 3 bytes per instruction) on the
// baseline bus (8-byte width, 10-cycle first latency, 2-cycle rate), so
// every arrival time can be derived by hand the same way the Figure 2
// tests do.

// newSoftwareBus is newSoftware but returns the engine's bus too, so
// tests can read traffic counters.
func newSoftwareBus(t *testing.T, cfg SoftwareConfig) (*Software, *mem.Bus) {
	t.Helper()
	bus := newBus(t, mem.Baseline())
	e, err := NewSoftware(paperComp(t), bus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, bus
}

// TestSoftwarePartialFirstLineTiming pins the whole partial-decode
// schedule for a first-line miss. Trap at 30; index entry beat at 40;
// the handler fetches only InstrReadyBytes(block, 7) = 24 of the block's
// 48 bytes (3 beats: 50, 52, 54); serial decode at 6 cycles/instr is
// compute-bound: 56, 62, ..., 98; return-from-trap adds TrapOverhead/2,
// and nothing is forwarded out of the handler, so every instruction of
// the line becomes visible at 98 + 15 = 113.
func TestSoftwarePartialFirstLineTiming(t *testing.T) {
	cfg := DefaultSoftware()
	cfg.DecodeWholeBlock = false
	sw, bus := newSoftwareBus(t, cfg)
	fill := sw.FetchLine(0, isa.TextBase, 0)
	for i, r := range fill.Ready {
		if r != 113 {
			t.Errorf("Ready[%d] = %d, want 113", i, r)
		}
	}
	if fill.Done != 113 {
		t.Errorf("Done = %d, want 113", fill.Done)
	}
	// Fetch traffic proves the partial read: one 4-byte index burst plus
	// a 24-byte block burst = 1 + 3 beats. A whole-block fetch would
	// move 48 bytes (6 beats).
	if s := bus.Stats(); s.Bursts != 2 || s.Beats != 4 {
		t.Errorf("bus traffic = %d bursts / %d beats, want 2/4", s.Bursts, s.Beats)
	}
}

// TestSoftwarePartialSecondLineIsWholeBlock drives the limit = lineOff +
// LineInstrs = 16 case: a second-line miss under partial decode must
// decode through the end of the block (fetching all 48 bytes) and still
// not retain a buffer. The schedule matches a whole-block decode —
// done[15] = 146, return at 161 — so partial mode only wins on
// first-line misses.
func TestSoftwarePartialSecondLineIsWholeBlock(t *testing.T) {
	cfg := DefaultSoftware()
	cfg.DecodeWholeBlock = false
	sw, bus := newSoftwareBus(t, cfg)
	fill := sw.FetchLine(0, isa.TextBase+32, 0)
	for i, r := range fill.Ready {
		if r != 161 {
			t.Errorf("Ready[%d] = %d, want 161", i, r)
		}
	}
	if s := bus.Stats(); s.Bursts != 2 || s.Beats != 7 {
		t.Errorf("bus traffic = %d bursts / %d beats, want 2/7", s.Bursts, s.Beats)
	}
	// The first half of the block was decoded on the way to line 1 but
	// must NOT be buffered: a later first-line miss re-reads the block.
	sw.FetchLine(1000, isa.TextBase, 0)
	if s := sw.Stats(); s.BufferHits != 0 || s.BlockReads != 2 {
		t.Errorf("buffer hits/block reads = %d/%d, want 0/2", s.BufferHits, s.BlockReads)
	}
}

// TestSoftwarePartialByteArrivalGating lowers the decode cost to 1
// cycle/instr so the bus, not the handler, is the bottleneck: each
// decode step must wait for its codeword's bytes. Instructions 0-1 ride
// beat 0 (cycle 50), 2-4 beat 1 (52), 5-7 beat 2 (54); serial decode
// lands the 8th at 58, so the trap returns at 58 + 15 = 73. Ignoring
// byte arrival would finish decode at 48 and return at 63.
func TestSoftwarePartialByteArrivalGating(t *testing.T) {
	cfg := DefaultSoftware()
	cfg.DecodeWholeBlock = false
	cfg.CyclesPerInstr = 1
	sw, _ := newSoftwareBus(t, cfg)
	fill := sw.FetchLine(0, isa.TextBase, 0)
	if fill.Done != 73 {
		t.Errorf("Done = %d, want 73 (byte-arrival gated)", fill.Done)
	}
}

// TestSoftwareNoForwardingFromTrap checks the structural property behind
// the pinned schedules: a software handler cannot forward individual
// instructions to the core mid-trap, so every Ready time in a fill that
// actually ran the handler equals the return-from-trap time, in both
// whole-block and partial modes.
func TestSoftwareNoForwardingFromTrap(t *testing.T) {
	for _, whole := range []bool{true, false} {
		cfg := DefaultSoftware()
		cfg.DecodeWholeBlock = whole
		sw := newSoftware(t, cfg)
		for _, addr := range []uint32{isa.TextBase, isa.TextBase + 96} {
			sw.bufValid = false // force the handler path
			fill := sw.FetchLine(0, addr, 3)
			for i := 1; i < LineInstrs; i++ {
				if fill.Ready[i] != fill.Ready[0] {
					t.Fatalf("whole=%v addr=%#x: Ready[%d]=%d != Ready[0]=%d — forwarded out of a trap",
						whole, addr, i, fill.Ready[i], fill.Ready[0])
				}
			}
			if fill.Done != fill.Ready[0] {
				t.Fatalf("whole=%v: Done=%d != Ready=%d", whole, fill.Done, fill.Ready[0])
			}
		}
	}
}

// TestSoftwarePartialReadyMatchesFastDecoder ties the timing model to
// the real decoder: the bytes the handler fetches for a partial decode
// (InstrReadyBytes of the last decoded instruction) are exactly the
// bytes the fast table-driven decoder consumes for those instructions,
// so the modelled fetch is neither optimistic nor padded.
func TestSoftwarePartialReadyMatchesFastDecoder(t *testing.T) {
	c := paperComp(t)
	var out [core.BlockInstrs]isa.Word
	var pos [core.BlockInstrs]uint16
	for b := 0; b < 4; b++ {
		if err := c.DecodeBlockPositions(b, &out, &pos); err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		for _, last := range []int{LineInstrs - 1, core.BlockInstrs - 1} {
			want := int(pos[last]+7) / 8
			if got := c.InstrReadyBytes(b, last); got != want {
				t.Fatalf("block %d instr %d: handler fetches %d bytes, fast decoder needs %d",
					b, last, got, want)
			}
		}
	}
}
