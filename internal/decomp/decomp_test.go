package decomp

import (
	"testing"

	"codepack/internal/core"
	"codepack/internal/isa"
	"codepack/internal/mem"
)

func newBus(t *testing.T, cfg mem.Config) *mem.Bus {
	t.Helper()
	b, err := mem.NewBus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestNativeCriticalWordFirst reproduces Figure 2-a: on the baseline 64-bit
// bus the critical instruction arrives at t=10 and the remaining beats land
// at 12, 14 and 16.
func TestNativeCriticalWordFirst(t *testing.T) {
	bus := newBus(t, mem.Baseline())
	eng := &Native{Bus: bus, CriticalWordFirst: true}
	fill := eng.FetchLine(0, isa.TextBase, 4)
	if fill.Ready[4] != 10 {
		t.Errorf("critical word at t=%d, want 10", fill.Ready[4])
	}
	// Words 4,5 in beat 0; 6,7 in beat 1; 0,1 in beat 2; 2,3 in beat 3.
	want := [8]uint64{14, 14, 16, 16, 10, 10, 12, 12}
	if fill.Ready != want {
		t.Errorf("ready = %v, want %v", fill.Ready, want)
	}
	if fill.Done != 16 {
		t.Errorf("done = %d, want 16", fill.Done)
	}
}

func TestNativeInOrderFill(t *testing.T) {
	bus := newBus(t, mem.Baseline())
	eng := &Native{Bus: bus} // no critical-word-first
	fill := eng.FetchLine(0, isa.TextBase, 5)
	want := [8]uint64{10, 10, 12, 12, 14, 14, 16, 16}
	if fill.Ready != want {
		t.Errorf("ready = %v, want %v", fill.Ready, want)
	}
}

func TestNativeNarrowBus(t *testing.T) {
	// 16-bit bus: each instruction needs two beats; the full line needs 16.
	bus := newBus(t, mem.Config{WidthBytes: 2, FirstLatency: 10, BeatLatency: 2})
	eng := &Native{Bus: bus, CriticalWordFirst: true}
	fill := eng.FetchLine(0, isa.TextBase, 0)
	if fill.Ready[0] != 12 { // beats 0,1 -> t=10,12
		t.Errorf("critical word at %d, want 12", fill.Ready[0])
	}
	if fill.Done != 40 { // beat 15 at 10+15*2
		t.Errorf("done = %d, want 40", fill.Done)
	}
}

func TestBusContentionSerializesMisses(t *testing.T) {
	bus := newBus(t, mem.Baseline())
	eng := &Native{Bus: bus, CriticalWordFirst: true}
	a := eng.FetchLine(0, isa.TextBase, 0)
	b := eng.FetchLine(0, isa.TextBase+32, 0)
	if b.Ready[0] <= a.Done {
		t.Errorf("second miss beat0 %d should follow first done %d", b.Ready[0], a.Done)
	}
}

// paperBlock builds a compressed program whose first block reproduces the
// Figure 2 beat pattern: consecutive 64-bit beats deliver 2,3,3,3,3,2
// instructions. We synthesize instructions whose codewords are 11+21 bits
// (hi class3 + lo raw) = 4 bytes each... instead, directly verify against
// the block's own layout; the *worked-example* tests below construct the
// exact paper geometry via a hand-built stream.
func paperComp(t *testing.T) *core.Compressed {
	t.Helper()
	// Make every instruction of block 0 encode to exactly 24 bits
	// (3 bytes): high half raw (19 bits) + low half class1 (5 bits).
	// Low halfwords: 8 frequent values -> class-1 slots. High halfwords:
	// all singletons, so the 73 small-class slots go to the lowest
	// values (tie-break); block 0 uses the highest values, which stay
	// raw, and the singleton policy keeps them out of class 3.
	text := make([]isa.Word, 1024)
	for i := range text {
		hi := uint32(0x4000 + i) // unique singletons
		if i < core.BlockInstrs {
			hi = uint32(0xF000 + i) // block 0: guaranteed raw
		}
		lo := uint32(0x0010 + i%8) // 8 frequent values -> class1 (5 bits)
		text[i] = hi<<16 | lo
	}
	c, err := core.CompressWords("paper", isa.TextBase, text)
	if err != nil {
		t.Fatal(err)
	}
	// Check the premise: every instruction costs 3 bytes cumulative.
	for i := 0; i < core.BlockInstrs; i++ {
		if got := c.InstrReadyBytes(0, i); got != 3*(i+1) {
			t.Fatalf("premise broken: instr %d needs %d bytes, want %d", i, got, 3*(i+1))
		}
	}
	return c
}

// TestFigure2Baseline reproduces Figure 2-b: with the beat pattern
// 2,3,3,3,3,2 and a 1-instruction/cycle decompressor, a miss whose critical
// instruction is the 5th in the line is served at t=25 (10 cycles index
// fetch + fetch/decompress overlap).
func TestFigure2Baseline(t *testing.T) {
	c := paperComp(t)
	bus := newBus(t, mem.Baseline())
	eng, err := NewCodePack(c, bus, BaselineCodePack())
	if err != nil {
		t.Fatal(err)
	}
	fill := eng.FetchLine(0, isa.TextBase, 4)
	// 3-byte instructions on an 8-byte bus: beat k ends at byte 8(k+1);
	// instr i needs 3(i+1) bytes: i0,i1 beat0; i2..i4 beat1; ... exactly
	// the paper's 2,3,3,3,3,2 pattern.
	// Index fetch: t=10. Block beats: 20,22,24,26,28,30.
	// Serial decode at 1/cycle: i0=21, i1=22, i2=23, i3=24, i4=25.
	want := [8]uint64{21, 22, 23, 24, 25, 26, 27, 28}
	if fill.Ready != want {
		t.Errorf("ready = %v, want %v", fill.Ready, want)
	}
	if fill.Ready[4] != 25 {
		t.Errorf("critical instruction at t=%d, paper says 25", fill.Ready[4])
	}
}

// TestFigure2Optimized reproduces Figure 2-c: with an index-cache hit and 2
// decompressors/cycle the critical instruction is ready at t=14.
func TestFigure2Optimized(t *testing.T) {
	c := paperComp(t)
	bus := newBus(t, mem.Baseline())
	cfg := OptimizedCodePack()
	eng, err := NewCodePack(c, bus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the index cache with a first access, then reset the bus clock
	// by fetching at a later time and measuring relative latency: instead
	// simply use PerfectIndex to model the figure's "index cache hit".
	cfg.PerfectIndex = true
	eng2, err := NewCodePack(c, newBus(t, mem.Baseline()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fill := eng2.FetchLine(0, isa.TextBase, 4)
	// Block beats at 10,12,14,...; decode 2/cycle:
	// i0,i1 <- beat0: t=11; i2,i3 <- beat1: t=13; i4 with i5: t=14... i4
	// arrives in beat1 (needs 15 bytes <= 16), decodes in the next pair
	// slot at t=14, matching the paper.
	if fill.Ready[4] != 14 {
		t.Errorf("critical instruction at t=%d, paper says 14", fill.Ready[4])
	}
	_ = eng
}

func TestPrefetchBufferServesOtherLine(t *testing.T) {
	c := paperComp(t)
	bus := newBus(t, mem.Baseline())
	eng, err := NewCodePack(c, bus, BaselineCodePack())
	if err != nil {
		t.Fatal(err)
	}
	first := eng.FetchLine(0, isa.TextBase, 0)
	// Second line of the same block: the output buffer has it.
	second := eng.FetchLine(first.Done+5, isa.TextBase+32, 0)
	if got := eng.Stats().BufferHits; got != 1 {
		t.Fatalf("buffer hits = %d, want 1", got)
	}
	if second.Ready[0] != first.Done+6 {
		t.Errorf("buffered line ready at %d, want now+1 = %d", second.Ready[0], first.Done+6)
	}
	if eng.Stats().BlockReads != 1 {
		t.Errorf("block reads = %d, want 1 (buffer hit avoids memory)", eng.Stats().BlockReads)
	}
}

func TestPrefetchDisabled(t *testing.T) {
	c := paperComp(t)
	cfg := BaselineCodePack()
	cfg.DisablePrefetch = true
	bus := newBus(t, mem.Baseline())
	eng, err := NewCodePack(c, bus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.FetchLine(0, isa.TextBase, 0)
	eng.FetchLine(100, isa.TextBase+32, 0)
	if eng.Stats().BufferHits != 0 {
		t.Error("prefetch disabled but buffer hit recorded")
	}
	if eng.Stats().BlockReads != 2 {
		t.Errorf("block reads = %d, want 2", eng.Stats().BlockReads)
	}
}

func TestBaselineIndexRegisterReuse(t *testing.T) {
	c := paperComp(t)
	bus := newBus(t, mem.Baseline())
	eng, err := NewCodePack(c, bus, BaselineCodePack())
	if err != nil {
		t.Fatal(err)
	}
	// Both blocks of group 0 share one index entry: the second block's
	// fetch should hit the single-entry index register.
	eng.FetchLine(0, isa.TextBase, 0)      // block 0 (fills buffer)
	eng.FetchLine(500, isa.TextBase+64, 0) // block 1, same group
	s := eng.Stats()
	if s.IndexLookups != 2 || s.IndexMisses != 1 {
		t.Fatalf("index lookups/misses = %d/%d, want 2/1", s.IndexLookups, s.IndexMisses)
	}
	// A different group must miss the 1-entry register.
	eng.FetchLine(1000, isa.TextBase+128, 0)
	if got := eng.Stats().IndexMisses; got != 2 {
		t.Fatalf("index misses = %d, want 2", got)
	}
}

func TestIndexCacheGeometry(t *testing.T) {
	ic := newIndexCache(2, 4)
	// Groups 0-3 share line key 0; groups 4-7 share key 1.
	if ic.access(0) {
		t.Fatal("cold access hit")
	}
	if !ic.access(3) {
		t.Fatal("same line should hit")
	}
	if ic.access(4) {
		t.Fatal("different line should miss")
	}
	if !ic.access(1) {
		t.Fatal("line 0 still resident")
	}
	if ic.access(9) { // key 2 evicts LRU (key 1)
		t.Fatal("cold line hit")
	}
	if ic.access(5) {
		t.Fatal("key 1 was LRU and should have been evicted")
	}
	// The key-1 refill just evicted key 0 (LRU after key 2 arrived).
	if ic.access(0) {
		t.Fatal("key 0 should have been evicted by the key-1 refill")
	}
	// That miss filled key 0 over key 2; key 1 (MRU before it) survives.
	if !ic.access(5) {
		t.Fatal("key 1 should survive")
	}
}

func TestPerfectIndexNeverTouchesMemoryForIndex(t *testing.T) {
	c := paperComp(t)
	cfg := BaselineCodePack()
	cfg.PerfectIndex = true
	bus := newBus(t, mem.Baseline())
	eng, err := NewCodePack(c, bus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.FetchLine(0, isa.TextBase, 0)
	eng.FetchLine(100, isa.TextBase+128, 0)
	if s := eng.Stats(); s.IndexMisses != 0 {
		t.Fatalf("perfect index missed %d times", s.IndexMisses)
	}
	// Exactly the two block bursts on the bus.
	if got := bus.Stats().Bursts; got != 2 {
		t.Fatalf("bursts = %d, want 2", got)
	}
}

func TestDecodeRateMonotonicity(t *testing.T) {
	// Wider decoders can never be slower, for any critical offset.
	c := paperComp(t)
	var prev [8]uint64
	for rate := 1; rate <= 16; rate *= 2 {
		cfg := CodePackConfig{DecodeRate: rate, PerfectIndex: true}
		eng, err := NewCodePack(c, newBus(t, mem.Baseline()), cfg)
		if err != nil {
			t.Fatal(err)
		}
		fill := eng.FetchLine(0, isa.TextBase+32, 3)
		if rate > 1 {
			for i := range fill.Ready {
				if fill.Ready[i] > prev[i] {
					t.Fatalf("rate %d slower than previous at %d: %d > %d",
						rate, i, fill.Ready[i], prev[i])
				}
			}
		}
		prev = fill.Ready
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (CodePackConfig{DecodeRate: 0, IndexCacheLines: 1, IndexEntriesPerLine: 1}).Validate(); err == nil {
		t.Error("zero decode rate accepted")
	}
	if err := (CodePackConfig{DecodeRate: 1}).Validate(); err == nil {
		t.Error("missing index cache accepted")
	}
	if err := (CodePackConfig{DecodeRate: 1, PerfectIndex: true}).Validate(); err != nil {
		t.Errorf("perfect-index config rejected: %v", err)
	}
	if err := BaselineCodePack().Validate(); err != nil {
		t.Errorf("baseline invalid: %v", err)
	}
	if err := OptimizedCodePack().Validate(); err != nil {
		t.Errorf("optimized invalid: %v", err)
	}
}

func TestSetAssociativeIndexCache(t *testing.T) {
	// 4 lines, 2-way: keys 0 and 2 map to set 0, keys 1 and 3 to set 1.
	ic := newIndexCacheAssoc(4, 1, 2)
	if ic.access(0) || ic.access(2) {
		t.Fatal("cold hits")
	}
	if !ic.access(0) || !ic.access(2) {
		t.Fatal("both ways of set 0 should be resident")
	}
	if ic.access(4) { // key 4 -> set 0, evicts LRU (key 0)
		t.Fatal("cold key hit")
	}
	if ic.access(0) {
		t.Fatal("key 0 should have been evicted from its set")
	}
	// Set 1 was untouched throughout.
	if ic.access(1) {
		t.Fatal("cold key in set 1 hit")
	}
	if !ic.access(1) {
		t.Fatal("key 1 resident")
	}
}

func TestSetAssocNeverBeatsFullyAssociative(t *testing.T) {
	// Over a scan pattern with reuse, FA >= set-assoc hit rate.
	pattern := []int{0, 1, 2, 3, 8, 0, 1, 2, 3, 8, 16, 0, 1, 24, 2, 3, 0, 8}
	count := func(assoc int) int {
		ic := newIndexCacheAssoc(8, 1, assoc)
		hits := 0
		for _, g := range pattern {
			if ic.access(g) {
				hits++
			}
		}
		return hits
	}
	fa, sa2 := count(0), count(2)
	if sa2 > fa {
		t.Fatalf("2-way (%d hits) beat fully associative (%d)", sa2, fa)
	}
}

func TestEngineWithSetAssocIndex(t *testing.T) {
	c := paperComp(t)
	cfg := OptimizedCodePack()
	cfg.IndexCacheAssoc = 4
	eng, err := NewCodePack(c, newBus(t, mem.Baseline()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.FetchLine(0, isa.TextBase, 0)
	eng.FetchLine(100, isa.TextBase+128, 0)
	if eng.Stats().IndexLookups == 0 {
		t.Fatal("index cache not consulted")
	}
}
