// Package program defines the loadable program image shared by the
// assembler, the CodePack codec, the emulator and the simulators.
package program

import (
	"encoding/binary"
	"fmt"
	"sort"

	"codepack/internal/isa"
)

// Image is a loaded SS32 program.
type Image struct {
	Name     string
	Entry    uint32     // entry point (byte address in text)
	TextBase uint32     // load address of Text[0]
	Text     []isa.Word // instruction words
	DataBase uint32     // load address of Data[0]
	Data     []byte     // initialized data
	Symbols  map[string]uint32
}

// TextBytes returns the size of the text section in bytes.
func (im *Image) TextBytes() int { return len(im.Text) * isa.InstBytes }

// TextEnd returns the first byte address past the text section.
func (im *Image) TextEnd() uint32 { return im.TextBase + uint32(im.TextBytes()) }

// InText reports whether addr falls inside the text section.
func (im *Image) InText(addr uint32) bool {
	return addr >= im.TextBase && addr < im.TextEnd()
}

// WordAt returns the instruction word at byte address addr.
func (im *Image) WordAt(addr uint32) (isa.Word, error) {
	if !im.InText(addr) || addr%4 != 0 {
		return 0, fmt.Errorf("program: text address 0x%x out of range", addr)
	}
	return im.Text[(addr-im.TextBase)/4], nil
}

// Symbol returns the address of a named symbol.
func (im *Image) Symbol(name string) (uint32, bool) {
	a, ok := im.Symbols[name]
	return a, ok
}

// SymbolNames returns all symbol names sorted by address.
func (im *Image) SymbolNames() []string {
	names := make([]string, 0, len(im.Symbols))
	for n := range im.Symbols {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := im.Symbols[names[i]], im.Symbols[names[j]]
		if a != b {
			return a < b
		}
		return names[i] < names[j]
	})
	return names
}

// Validate checks structural invariants of the image.
func (im *Image) Validate() error {
	if len(im.Text) == 0 {
		return fmt.Errorf("program %q: empty text section", im.Name)
	}
	if im.TextBase%4 != 0 {
		return fmt.Errorf("program %q: text base 0x%x not word aligned", im.Name, im.TextBase)
	}
	if !im.InText(im.Entry) {
		return fmt.Errorf("program %q: entry 0x%x outside text", im.Name, im.Entry)
	}
	return nil
}

// Binary file layout: magic, entry, text base/len, data base/len, then
// payload. Symbols are not serialized.
const magic = 0x53533332 // "SS32"

// Marshal serializes the image to the cpack on-disk format.
func (im *Image) Marshal() []byte {
	buf := make([]byte, 0, 24+im.TextBytes()+len(im.Data))
	put := func(v uint32) {
		buf = binary.LittleEndian.AppendUint32(buf, v)
	}
	put(magic)
	put(im.Entry)
	put(im.TextBase)
	put(uint32(len(im.Text)))
	put(im.DataBase)
	put(uint32(len(im.Data)))
	for _, w := range im.Text {
		put(w)
	}
	return append(buf, im.Data...)
}

// Unmarshal parses an image produced by Marshal.
func Unmarshal(b []byte) (*Image, error) {
	if len(b) < 24 || binary.LittleEndian.Uint32(b) != magic {
		return nil, fmt.Errorf("program: bad image header")
	}
	get := func(i int) uint32 { return binary.LittleEndian.Uint32(b[i*4:]) }
	im := &Image{
		Entry:    get(1),
		TextBase: get(2),
		DataBase: get(4),
	}
	nText, nData := int(get(3)), int(get(5))
	if len(b) != 24+nText*4+nData {
		return nil, fmt.Errorf("program: image size mismatch: have %d bytes, want %d",
			len(b), 24+nText*4+nData)
	}
	im.Text = make([]isa.Word, nText)
	for i := range im.Text {
		im.Text[i] = get(6 + i)
	}
	im.Data = append([]byte(nil), b[24+nText*4:]...)
	return im, im.Validate()
}
